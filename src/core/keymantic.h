// KeymanticEngine: the end-to-end keyword-search pipeline.
//
//   keyword query ──tokenize──► keywords
//     ──forward (weights + extended Hungarian / HMM)──► top configurations
//     ──backward (schema-graph Steiner trees)─────────► interpretations
//     ──combine (DST / linear)────────────────────────► ranked list
//     ──translate─────────────────────────────────────► SQL explanations
//
// The engine is constructed once per database (metadata extraction, graph
// construction and — when instance access is granted — value indexing and
// MI edge weighting happen here) and can then answer any number of queries.

#ifndef KM_CORE_KEYMANTIC_H_
#define KM_CORE_KEYMANTIC_H_

#include <memory>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "common/query_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/prepared_state.h"
#include "engine/query.h"
#include "graph/interpretation.h"
#include "graph/schema_graph.h"
#include "graph/summary.h"
#include "hmm/hmm.h"
#include "hmm/model_builder.h"
#include "matching/config_gen.h"
#include "metadata/configuration.h"
#include "metadata/term.h"
#include "metadata/weights.h"
#include "relational/database.h"
#include "text/tokenizer.h"

namespace km {

class ExecutionGate;  // engine/executor.h

/// Which forward-analysis implementation produces configurations.
enum class ForwardMode {
  kHungarian = 0,   ///< the metadata approach (extended bipartite matching)
  kHmmApriori = 1,  ///< HMM with a-priori heuristic parameters
  kHmmTrained = 2,  ///< HMM trained via HmmTrainer (see SetTrainedHmm)
  kCombinedDst = 3, ///< DST combination of Hungarian and HMM lists
};

/// Which graph the backward step searches.
enum class BackwardMode {
  kFullGraph = 0,  ///< k-best Steiner trees on the term-level graph
  kSummary = 1,    ///< relation-level summary graph, expanded afterwards
};

/// How configuration and interpretation rankings are merged.
enum class CombineMode {
  kDst = 0,          ///< Dempster–Shafer combination (the paper family's choice)
  kLinear = 1,       ///< conf_fw·s_fw + conf_bw·s_bw on normalized scores
  kForwardOnly = 2,  ///< ignore interpretation scores
  kBackwardOnly = 3, ///< ignore configuration scores
};

/// Engine-wide options.
struct EngineOptions {
  WeightOptions weights;
  ConfigGenOptions forward;
  SteinerOptions steiner;
  ForwardMode forward_mode = ForwardMode::kHungarian;
  BackwardMode backward_mode = BackwardMode::kFullGraph;
  CombineMode combine_mode = CombineMode::kDst;
  /// Confidence placed on the forward (configuration) ranking; the
  /// backward confidence is 1 − conf_forward.
  double conf_forward = 0.5;
  /// Confidences of the two forward implementations in kCombinedDst mode.
  double conf_hungarian = 0.6;
  double conf_hmm = 0.4;
  /// Number of configurations taken from the forward step.
  size_t config_k = 10;
  /// Number of interpretations per configuration from the backward step.
  size_t interp_per_config = 3;
  /// Use mutual-information weights on FK edges (needs instance access).
  bool use_mi_weights = true;
  /// Build the multi-word phrase vocabulary from the instance (needs
  /// instance access).
  bool build_phrase_vocabulary = true;
  /// Drop explanations whose SQL returns zero tuples (needs instance
  /// access; the engine still returns them when everything is empty).
  bool penalize_empty_results = false;
  /// Worker threads of the engine's task pool. 0 (the default) keeps every
  /// stage on the calling thread. With a pool the engine parallelizes
  /// per-keyword weight rows, the Murty child re-solves, per-configuration
  /// Steiner discovery and whole AnswerBatch queries — all with results
  /// byte-identical to the serial path (workers write disjoint slots).
  size_t threads = 0;
  /// Entry bound of the cross-query Steiner-tree cache, keyed by the
  /// canonical terminal-node set (configurations overlap heavily in their
  /// image nodes). 0 disables the cache.
  size_t steiner_cache_capacity = 1024;
  /// Collect a per-query span tree (AnswerResult::trace). Off by default:
  /// the disabled tracer costs one null-pointer test per instrumented
  /// scope and leaves every answer byte-identical.
  bool trace = false;
  /// Fill AnswerResult::provenance (per-keyword weight decomposition of
  /// the top answer's configuration) for Explain(). Off by default.
  bool explain = false;
  /// Admission gate (typically a serve/CircuitBreaker) consulted before
  /// every executor call the engine makes (penalize_empty_results probing).
  /// Non-owning and nullable; must outlive the engine. When the gate
  /// rejects, probing is skipped (execution_truncated) instead of hammering
  /// a failing backend.
  ExecutionGate* execution_gate = nullptr;
};

/// The prepare-time subset of `options` (what PreparedState::Build needs).
PrepareOptions PrepareOptionsFromEngine(const EngineOptions& options);

/// One ranked answer: the SQL explanation with its provenance.
struct Explanation {
  SpjQuery sql;
  Configuration configuration;
  Interpretation interpretation;
  double score = 0.0;          ///< final combined score
  double forward_score = 0.0;  ///< normalized configuration score
  double backward_score = 0.0; ///< normalized interpretation score

  /// Human-readable multi-line rendering.
  std::string ToString(const std::vector<std::string>& keywords,
                       const Terminology& terminology) const;
};

/// Per-stage work spend and degradation record of one Answer() call.
struct AnswerStats {
  /// Work units spent per pipeline stage, indexed by QueryStage. Filled
  /// from the QueryContext; all zero when the caller passed none.
  uint64_t stage_spend[kNumQueryStages] = {};
  /// Wall-clock time since the QueryContext was created (0 without one).
  double elapsed_ms = 0.0;
  /// The forward step fell down its ladder (Murty top-k → single Hungarian
  /// optimum, or HMM → Hungarian) or had its candidate list cut short.
  bool forward_degraded = false;
  /// The backward step fell down its ladder (full-graph DPBF → summary
  /// graph → shortest-path join trees).
  bool backward_degraded = false;
  /// Not every configuration was expanded into interpretations.
  bool candidates_truncated = false;
  /// Empty-result probing (penalize_empty_results) was skipped or cut.
  bool execution_truncated = false;
  /// Engine-cumulative snapshot of the keyword → weight-row cache taken as
  /// this answer finished (hits/misses/evictions since engine construction,
  /// shared across all queries — deltas between answers give per-query
  /// figures).
  CacheCounters keyword_row_cache;
  /// Same snapshot for the terminal-set → Steiner-tree cache.
  CacheCounters steiner_cache;
};

/// Why one keyword of the winning configuration mapped to its term: the
/// intrinsic weight decomposition plus the contextual factor it carried.
struct KeywordProvenance {
  std::string keyword;
  std::string term;  ///< rendered database term ("PERSON.name", "Dom(name)")
  WeightProvenance weight;
  /// Contextual multiplier in effect when the keyword was scored
  /// left-to-right (1.0 = no contextualization rule fired).
  double contextual_factor = 1.0;
};

/// Everything Answer() returns: the ranked explanations, how trustworthy
/// the ranking is, and where the budget went.
struct AnswerResult {
  std::vector<Explanation> explanations;
  /// kComplete: every stage ran its preferred algorithm to completion.
  /// kDegraded: some stage used a fallback rung; ranking is approximate.
  /// kPartial: some candidates were never evaluated; results are a subset.
  /// kDeadlineExceeded: the deadline expired (or the query was cancelled)
  /// while producing these results.
  ResultQuality quality = ResultQuality::kComplete;
  AnswerStats stats;
  /// Root of the per-query span tree (null unless EngineOptions::trace).
  std::shared_ptr<const TraceNode> trace;
  /// Per-keyword weight provenance of the top explanation's configuration
  /// (empty unless EngineOptions::explain).
  std::vector<KeywordProvenance> provenance;

  /// The EXPLAIN answer: provenance lines plus the span tree (when
  /// collected). With include_timings=false the rendering is stable across
  /// runs — the form the golden-trace suite snapshots.
  std::string Explain(bool include_timings = true) const;
};

/// The end-to-end engine.
class KeymanticEngine {
 public:
  /// Builds the engine over `db`. The database must outlive the engine.
  /// `db` is also the source of instance statistics; pass
  /// options.weights.use_instance_vocabulary = false (and
  /// use_mi_weights = false) for the deep-web scenario.
  ///
  /// Equivalent to FromPreparedState(db, PreparedState::Build(db, ...)):
  /// the prepared state is built here and owned (shared) by the engine.
  KeymanticEngine(const Database& db, EngineOptions options = {});

  /// Builds a cheap engine handle over prepared state that already exists
  /// (typically loaded from a snapshot — see snapshot/snapshot.h). Fails
  /// with InvalidArgument when the state is null, was prepared under
  /// incompatible prepare-time options (use_mi_weights,
  /// build_phrase_vocabulary, weights.use_instance_vocabulary), or
  /// describes a different schema than `db`. The database and state must
  /// outlive the engine (the state is shared, so "outlive" is automatic).
  static StatusOr<std::unique_ptr<KeymanticEngine>> FromPreparedState(
      const Database& db, std::shared_ptr<const PreparedState> state,
      EngineOptions options = {});

  /// Unregisters the engine's metrics collector (cache gauges).
  ~KeymanticEngine();

  KeymanticEngine(const KeymanticEngine&) = delete;
  KeymanticEngine& operator=(const KeymanticEngine&) = delete;

  /// Answers a raw keyword query under an optional per-query budget.
  ///
  /// Input is validated first (non-empty, valid UTF-8, balanced quotes,
  /// at most kMaxQueryKeywords keywords) — hostile input yields
  /// InvalidArgument, never an abort. With a QueryContext, exhaustion is
  /// absorbed by the degradation ladder: the engine falls back to cheaper
  /// algorithms stage by stage and returns a ranked (possibly partial)
  /// result tagged with its ResultQuality instead of an error.
  StatusOr<AnswerResult> Answer(const std::string& query, size_t k,
                                QueryContext* ctx = nullptr) const;

  /// Answer() for a pre-tokenized keyword query.
  StatusOr<AnswerResult> AnswerKeywords(const std::vector<std::string>& keywords,
                                        size_t k, QueryContext* ctx = nullptr) const;

  /// Answers many raw queries over the shared immutable prepared state
  /// (terminology, schema graph, summary graph are built once, at engine
  /// construction). With a pool (options.threads > 0) the queries run
  /// concurrently; either way the returned vector has one entry per input
  /// query, in input order, each identical to a standalone Answer() call.
  ///
  /// `ctx` (optional) is shared by the whole batch: its budgets bound the
  /// batch's total work, and cancelling or expiring it stops every worker
  /// cooperatively (each in-flight query degrades to its floor rung).
  std::vector<StatusOr<AnswerResult>> AnswerBatch(
      const std::vector<std::string>& queries, size_t k,
      QueryContext* ctx = nullptr) const;

  /// Answers a raw keyword query: tokenizes and delegates to
  /// SearchKeywords. Equivalent to Answer() without a budget, keeping only
  /// the explanations.
  StatusOr<std::vector<Explanation>> Search(const std::string& query, size_t k) const;

  /// Answers a pre-tokenized keyword query.
  StatusOr<std::vector<Explanation>> SearchKeywords(
      const std::vector<std::string>& keywords, size_t k) const;

  /// Forward step only: ranked configurations.
  StatusOr<std::vector<Configuration>> Configurations(
      const std::vector<std::string>& keywords, size_t k) const;

  /// Backward step only: ranked interpretations of one configuration.
  StatusOr<std::vector<Interpretation>> Interpretations(const Configuration& config,
                                                        size_t k) const;

  /// Translates a (configuration, interpretation) pair into SQL
  /// (Definition 3.1).
  StatusOr<SpjQuery> Translate(const std::vector<std::string>& keywords,
                               const Configuration& config,
                               const Interpretation& interpretation) const;

  /// Installs the trained HMM used by ForwardMode::kHmmTrained.
  void SetTrainedHmm(Hmm hmm);

  /// One keyword↔term match with its weight (introspection/debugging).
  struct KeywordMatch {
    size_t term_index;
    double weight;
  };

  /// The strongest `limit` database-term matches of a single keyword,
  /// sorted by descending intrinsic weight (zero-weight terms omitted).
  /// This exposes the engine's view of a keyword for debugging and for
  /// user-facing "why did it match this?" explanations.
  std::vector<KeywordMatch> ExplainKeyword(const std::string& keyword,
                                           size_t limit = 10) const;

  const Terminology& terminology() const { return state_->terminology(); }
  const SchemaGraph& graph() const { return state_->graph(); }
  const WeightMatrixBuilder& weight_builder() const { return *weights_; }
  const Database& database() const { return db_; }
  const EngineOptions& options() const { return options_; }
  const TokenizerOptions& tokenizer_options() const {
    return state_->tokenizer_options();
  }
  /// The immutable prepared state this engine answers over (shareable with
  /// other engines and with SaveSnapshot).
  const std::shared_ptr<const PreparedState>& prepared_state() const {
    return state_;
  }

 private:
  /// Shared tail of both construction paths; `state` must be non-null.
  KeymanticEngine(const Database& db,
                  std::shared_ptr<const PreparedState> state,
                  EngineOptions options);
  /// AnswerKeywords() behind the input validation and root-span setup:
  /// `root` (nullable) is the per-query trace root the stage spans hang off.
  StatusOr<AnswerResult> AnswerInternal(const std::vector<std::string>& keywords,
                                        size_t k, QueryContext* ctx,
                                        TraceNode* root) const;

  /// Fills result->provenance for the top explanation (options_.explain).
  void FillProvenance(const std::vector<std::string>& keywords,
                      AnswerResult* result) const;

  /// Records answer count/quality/latency metrics for one finished answer.
  void RecordAnswerMetrics(const AnswerResult& result) const;

  /// Forward-mode dispatch behind Configurations(), which wraps the result
  /// in debug-build invariant validation. With a QueryContext the forward
  /// ladder applies: exhaustion (or an HMM failure) falls back to the
  /// bounded Hungarian-optimum rung, setting *degraded, instead of erroring.
  StatusOr<std::vector<Configuration>> ConfigurationsImpl(
      const std::vector<std::string>& keywords, size_t k, QueryContext* ctx,
      bool* degraded, TraceNode* parent = nullptr) const;

  StatusOr<std::vector<Configuration>> HmmConfigurations(
      const std::vector<std::string>& keywords, size_t k, const Hmm& hmm,
      QueryContext* ctx, TraceNode* parent = nullptr) const;

  /// Backward ladder: preferred search (per backward_mode) first, then the
  /// summary graph, then shortest-path join trees (polynomial, budget-free)
  /// as the floor. Sets *degraded when a fallback rung produced the trees.
  StatusOr<std::vector<Interpretation>> InterpretationsLadder(
      const Configuration& config, size_t k, QueryContext* ctx,
      bool* degraded, TraceNode* parent = nullptr) const;

  /// Validates (debug), ranks, and returns the trees of one search rung.
  std::vector<Interpretation> FinishInterpretations(
      std::vector<Interpretation> trees) const;

  /// InterpretationsLadder behind the terminal-set cache: full-quality
  /// results (no fallback rung, no exhaustion) are stored and replayed for
  /// any configuration with the same image node set.
  StatusOr<std::vector<Interpretation>> CachedInterpretationsLadder(
      const Configuration& config, size_t k, QueryContext* ctx,
      bool* degraded, TraceNode* parent = nullptr) const;

  /// Cache key of a terminal set at a given k (canonical: sorted, deduped
  /// by construction of TerminalsOfConfiguration).
  std::string SteinerCacheKey(std::vector<size_t> terminals, size_t k) const;

  const Database& db_;
  EngineOptions options_;
  // All heavyweight prepared state (terminology, graphs, a-priori HMM,
  // phrase vocabulary, value index) lives behind this immutable handle;
  // the members below are per-engine runtime wiring over it.
  std::shared_ptr<const PreparedState> state_;
  std::unique_ptr<ThreadPool> pool_;  // null when options_.threads == 0
  std::unique_ptr<WeightMatrixBuilder> weights_;
  std::unique_ptr<ConfigurationGenerator> generator_;
  std::unique_ptr<Hmm> trained_hmm_;
  // Cross-query cache: canonical terminal set (+k) → finished ranked trees.
  // Thread-safe (sharded LRU); mutable because the answer path is const.
  mutable LruCache<std::string, std::vector<Interpretation>> steiner_cache_;
  // Metrics collector (cache gauges) registered at construction; the
  // engine is non-movable, so the captured `this` stays valid until the
  // destructor unregisters it.
  int64_t metrics_collector_id_ = 0;
};

}  // namespace km

#endif  // KM_CORE_KEYMANTIC_H_
