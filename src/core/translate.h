// Translation of (configuration, interpretation) pairs into SQL
// (Definition 3.1), as a free function so that both the engine and the
// workload generator share one implementation.

#ifndef KM_CORE_TRANSLATE_H_
#define KM_CORE_TRANSLATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/query.h"
#include "graph/interpretation.h"
#include "graph/schema_graph.h"
#include "metadata/configuration.h"
#include "metadata/term.h"
#include "relational/schema.h"

namespace km {

/// Builds the SPJ explanation of `config` under `interpretation`:
///   FROM   — every relation owning a node of the tree (plus image terms),
///   JOIN   — one equi-join per foreign-key edge of the tree,
///   WHERE  — `A = keyword` for every keyword mapped to Dom(A)
///            (CONTAINS for free-text domains and unparseable literals),
///   SELECT — attributes of relations named by a relation-term node plus
///            attribute-term images; empty select means SELECT R.*.
StatusOr<SpjQuery> TranslateToSql(const std::vector<std::string>& keywords,
                                  const Configuration& config,
                                  const Interpretation& interpretation,
                                  const Terminology& terminology,
                                  const DatabaseSchema& schema,
                                  const SchemaGraph& graph);

}  // namespace km

#endif  // KM_CORE_TRANSLATE_H_
