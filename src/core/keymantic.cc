#include "core/keymantic.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "analysis/invariants.h"
#include "common/check.h"
#include "common/strings.h"
#include "core/translate.h"
#include "dst/dst.h"
#include "engine/executor.h"
#include "graph/mi.h"

namespace km {

std::string Explanation::ToString(const std::vector<std::string>& keywords,
                                  const Terminology& terminology) const {
  std::string out = "score=" + StrFormat("%.4f", score) + "\n";
  out += "configuration: " + configuration.ToString(keywords, terminology) + "\n";
  out += "join tree cost: " + StrFormat("%.3f", interpretation.cost) + "\n";
  out += sql.ToSql();
  return out;
}

KeymanticEngine::KeymanticEngine(const Database& db, EngineOptions options)
    : db_(db),
      options_(options),
      terminology_(db.schema()),
      graph_(terminology_, db.schema()),
      apriori_hmm_(BuildAprioriHmm(terminology_, db.schema())) {
  if (options_.use_mi_weights) {
    // Best effort: fall back to unit weights when statistics are missing.
    (void)ApplyMiWeights(db_, &graph_);
  }
  // The graph is immutable from here on (MI only rescales FK weights), so
  // one structural validation at construction covers the engine lifetime.
  KM_DCHECK_OK(ValidateSchemaGraph(graph_, db.schema()));
  if (options_.backward_mode == BackwardMode::kSummary) {
    summary_ = std::make_unique<SummaryGraph>(graph_);
  }
  weights_ = std::make_unique<WeightMatrixBuilder>(terminology_, &db_,
                                                   options_.weights);
  generator_ = std::make_unique<ConfigurationGenerator>(terminology_, db_.schema(),
                                                        *weights_, options_.forward);
  if (options_.build_phrase_vocabulary) {
    for (const auto& [value, entries] : db_.BuildVocabulary()) {
      if (value.find(' ') == std::string::npos) continue;
      std::string key = NormalizePhraseKey(value);
      if (key.find(' ') != std::string::npos) {
        tokenizer_options_.phrase_vocabulary.insert(std::move(key));
      }
    }
  }
}

void KeymanticEngine::SetTrainedHmm(Hmm hmm) {
  trained_hmm_ = std::make_unique<Hmm>(std::move(hmm));
}

std::vector<KeymanticEngine::KeywordMatch> KeymanticEngine::ExplainKeyword(
    const std::string& keyword, size_t limit) const {
  std::vector<KeywordMatch> matches;
  for (size_t t = 0; t < terminology_.size(); ++t) {
    double w = weights_->Weight(keyword, terminology_.term(t));
    if (w > 0) matches.push_back({t, w});
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const KeywordMatch& a, const KeywordMatch& b) {
                     return a.weight > b.weight;
                   });
  if (matches.size() > limit) matches.resize(limit);
  return matches;
}

StatusOr<std::vector<Explanation>> KeymanticEngine::Search(const std::string& query,
                                                           size_t k) const {
  std::vector<std::string> keywords = Tokenize(query, tokenizer_options_);
  if (keywords.empty()) {
    return Status::InvalidArgument("query contains no keywords");
  }
  return SearchKeywords(keywords, k);
}

StatusOr<std::vector<Configuration>> KeymanticEngine::HmmConfigurations(
    const std::vector<std::string>& keywords, size_t k, const Hmm& hmm) const {
  Matrix sim = weights_->Build(keywords);
  KM_DCHECK_OK(ValidateWeightMatrix(sim, keywords.size(), terminology_.size()));
  Matrix emission = EmissionFromSimilarity(sim);
  KM_ASSIGN_OR_RETURN(std::vector<HmmPath> paths,
                      hmm.ListViterbi(emission, k, /*distinct_states=*/true));
  std::vector<Configuration> configs;
  configs.reserve(paths.size());
  for (HmmPath& p : paths) {
    Configuration c;
    c.term_for_keyword = std::move(p.states);
    c.score = p.log_prob;
    configs.push_back(std::move(c));
  }
  return configs;
}

StatusOr<std::vector<Configuration>> KeymanticEngine::Configurations(
    const std::vector<std::string>& keywords, size_t k) const {
  KM_ASSIGN_OR_RETURN(std::vector<Configuration> configs,
                      ConfigurationsImpl(keywords, k));
  // Every forward implementation must emit total injective mappings.
  for (const Configuration& c : configs) {
    KM_DCHECK_OK(ValidateConfiguration(c, keywords.size(), terminology_));
  }
  return configs;
}

StatusOr<std::vector<Configuration>> KeymanticEngine::ConfigurationsImpl(
    const std::vector<std::string>& keywords, size_t k) const {
  switch (options_.forward_mode) {
    case ForwardMode::kHungarian:
      return generator_->Generate(keywords, k);
    case ForwardMode::kHmmApriori:
      return HmmConfigurations(keywords, k, apriori_hmm_);
    case ForwardMode::kHmmTrained: {
      const Hmm& hmm = trained_hmm_ != nullptr ? *trained_hmm_ : apriori_hmm_;
      return HmmConfigurations(keywords, k, hmm);
    }
    case ForwardMode::kCombinedDst: {
      KM_ASSIGN_OR_RETURN(std::vector<Configuration> hung,
                          generator_->Generate(keywords, k));
      const Hmm& hmm = trained_hmm_ != nullptr ? *trained_hmm_ : apriori_hmm_;
      KM_ASSIGN_OR_RETURN(std::vector<Configuration> hmm_configs,
                          HmmConfigurations(keywords, k, hmm));
      // Universe: union of both lists, keyed by the term vector.
      std::vector<Configuration> universe;
      auto id_of = [&universe](const Configuration& c) -> size_t {
        for (size_t i = 0; i < universe.size(); ++i) {
          if (universe[i] == c) return i;
        }
        universe.push_back(c);
        return universe.size() - 1;
      };
      std::vector<std::pair<size_t, double>> ev_h, ev_m;
      for (const Configuration& c : hung) ev_h.emplace_back(id_of(c), c.score);
      for (const Configuration& c : hmm_configs) ev_m.emplace_back(id_of(c), c.score);
      MassFunction mh = MassFunction::FromScores(ev_h, options_.conf_hungarian);
      MassFunction mm = MassFunction::FromScores(ev_m, options_.conf_hmm);
      auto combined = MassFunction::Combine(mh, mm);
      if (!combined.ok()) return combined.status();
      std::vector<Configuration> out;
      for (const auto& [id, mass] : combined->Ranked()) {
        Configuration c = universe[id];
        c.score = mass;
        out.push_back(std::move(c));
        if (out.size() >= k) break;
      }
      return out;
    }
  }
  return Status::Internal("unknown forward mode");
}

StatusOr<std::vector<Interpretation>> KeymanticEngine::Interpretations(
    const Configuration& config, size_t k) const {
  std::vector<size_t> terminals = TerminalsOfConfiguration(config);
  SteinerOptions opts = options_.steiner;
  opts.k = k;
  std::vector<Interpretation> trees;
  if (options_.backward_mode == BackwardMode::kSummary && summary_ != nullptr) {
    KM_ASSIGN_OR_RETURN(trees, summary_->TopKTrees(terminals, opts));
  } else {
    KM_ASSIGN_OR_RETURN(trees, TopKSteinerTrees(graph_, terminals, opts));
  }
  // Both search paths must emit connected join trees over the full graph
  // (the summary path expands its relation-level trees before returning).
  for (const Interpretation& tree : trees) {
    KM_DCHECK_OK(ValidateInterpretation(tree, graph_));
  }
  RankInterpretations(&trees);
  return trees;
}

StatusOr<SpjQuery> KeymanticEngine::Translate(
    const std::vector<std::string>& keywords, const Configuration& config,
    const Interpretation& interpretation) const {
  return TranslateToSql(keywords, config, interpretation, terminology_,
                        db_.schema(), graph_);
}

StatusOr<std::vector<Explanation>> KeymanticEngine::SearchKeywords(
    const std::vector<std::string>& keywords, size_t k) const {
  if (keywords.empty()) {
    return Status::InvalidArgument("keyword query is empty");
  }
  KM_ASSIGN_OR_RETURN(std::vector<Configuration> configs,
                      Configurations(keywords, options_.config_k));
  if (configs.empty()) {
    return Status::NotFound("no configuration found for the query");
  }

  // Candidate (configuration, interpretation) pairs.
  struct Candidate {
    size_t config_index;
    Interpretation interp;
  };
  std::vector<Candidate> candidates;
  for (size_t ci = 0; ci < configs.size(); ++ci) {
    auto interps = Interpretations(configs[ci], options_.interp_per_config);
    if (!interps.ok()) continue;  // disconnected images: orphan configuration
    for (Interpretation& interp : *interps) {
      candidates.push_back({ci, std::move(interp)});
    }
  }
  if (candidates.empty()) {
    return Status::NotFound("no interpretation connects the keyword images");
  }

  // Normalized forward scores (configurations may carry log-probabilities;
  // shift-normalize like MassFunction does).
  std::vector<double> fwd(configs.size());
  {
    double mn = configs[0].score;
    for (const Configuration& c : configs) mn = std::min(mn, c.score);
    double shift = mn < 0 ? -mn : 0.0;
    double total = 0;
    for (const Configuration& c : configs) total += c.score + shift;
    for (size_t i = 0; i < configs.size(); ++i) {
      fwd[i] = total > 0 ? (configs[i].score + shift) / total
                         : 1.0 / static_cast<double>(configs.size());
    }
  }
  // Normalized backward scores. A configuration is not punished for
  // *intrinsically* needing a long join path: the dominant component is the
  // tree's excess cost over the best tree of its own configuration, plus a
  // weak absolute-coherence component so that, between configurations the
  // forward step cannot separate, the more tightly connected one wins.
  std::vector<double> bwd(candidates.size());
  {
    std::unordered_map<size_t, double> min_cost;  // per configuration
    for (const Candidate& c : candidates) {
      auto it = min_cost.find(c.config_index);
      if (it == min_cost.end() || c.interp.cost < it->second) {
        min_cost[c.config_index] = c.interp.cost;
      }
    }
    double total = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      double rel = candidates[i].interp.cost - min_cost[candidates[i].config_index];
      bwd[i] = 0.8 / (1.0 + rel) + 0.2 / (1.0 + candidates[i].interp.cost);
      total += bwd[i];
    }
    if (total > 0) {
      for (double& b : bwd) b /= total;
    }
  }

  // Combine.
  std::vector<double> combined(candidates.size(), 0.0);
  switch (options_.combine_mode) {
    case CombineMode::kForwardOnly:
      for (size_t i = 0; i < candidates.size(); ++i) {
        combined[i] = fwd[candidates[i].config_index] + 1e-9 * bwd[i];
      }
      break;
    case CombineMode::kBackwardOnly:
      for (size_t i = 0; i < candidates.size(); ++i) combined[i] = bwd[i];
      break;
    case CombineMode::kLinear: {
      double cf = std::clamp(options_.conf_forward, 0.0, 1.0);
      for (size_t i = 0; i < candidates.size(); ++i) {
        combined[i] = cf * fwd[candidates[i].config_index] + (1.0 - cf) * bwd[i];
      }
      break;
    }
    case CombineMode::kDst: {
      std::vector<std::pair<size_t, double>> ev_f, ev_b;
      for (size_t i = 0; i < candidates.size(); ++i) {
        ev_f.emplace_back(i, fwd[candidates[i].config_index]);
        ev_b.emplace_back(i, bwd[i]);
      }
      double cf = std::clamp(options_.conf_forward, 0.0, 1.0);
      MassFunction mf = MassFunction::FromScores(ev_f, cf);
      MassFunction mb = MassFunction::FromScores(ev_b, 1.0 - cf);
      auto m = MassFunction::Combine(mf, mb);
      if (!m.ok()) return m.status();
      for (size_t i = 0; i < candidates.size(); ++i) combined[i] = m->MassOf(i);
      break;
    }
  }

  // Translate, deduplicate by SQL signature (keep the best score), rank.
  std::unordered_map<std::string, size_t> by_signature;
  std::vector<Explanation> results;
  for (size_t i = 0; i < candidates.size(); ++i) {
    auto sql = Translate(keywords, configs[candidates[i].config_index],
                         candidates[i].interp);
    if (!sql.ok()) continue;
    Explanation ex;
    ex.sql = std::move(*sql);
    ex.configuration = configs[candidates[i].config_index];
    ex.interpretation = candidates[i].interp;
    ex.forward_score = fwd[candidates[i].config_index];
    ex.backward_score = bwd[i];
    ex.score = combined[i];
    std::string sig = ex.sql.CanonicalSignature();
    auto it = by_signature.find(sig);
    if (it != by_signature.end()) {
      if (results[it->second].score < ex.score) results[it->second] = std::move(ex);
      continue;
    }
    by_signature[sig] = results.size();
    results.push_back(std::move(ex));
  }

  if (options_.penalize_empty_results) {
    Executor exec(db_);
    for (Explanation& ex : results) {
      auto count = exec.Count(ex.sql);
      if (count.ok() && *count == 0) ex.score *= 0.25;
    }
  }

  std::stable_sort(results.begin(), results.end(),
                   [](const Explanation& a, const Explanation& b) {
                     return a.score > b.score;
                   });
  if (results.size() > k) results.resize(k);
  return results;
}

}  // namespace km
