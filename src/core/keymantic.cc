#include "core/keymantic.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <set>
#include <unordered_map>

#include "analysis/invariants.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "core/translate.h"
#include "dst/dst.h"
#include "engine/executor.h"
#include "graph/mi.h"

namespace km {

std::string Explanation::ToString(const std::vector<std::string>& keywords,
                                  const Terminology& terminology) const {
  std::string out = "score=" + StrFormat("%.4f", score) + "\n";
  out += "configuration: " + configuration.ToString(keywords, terminology) + "\n";
  out += "join tree cost: " + StrFormat("%.3f", interpretation.cost) + "\n";
  out += sql.ToSql();
  return out;
}

std::string AnswerResult::Explain(bool include_timings) const {
  std::string out;
  if (!provenance.empty()) {
    out += "weight provenance (top configuration):\n";
    for (const KeywordProvenance& p : provenance) {
      out += "  '" + p.keyword + "' -> " + p.term;
      out += "  w=" + StrFormat("%.3f", p.weight.final_weight);
      out += " via ";
      out += p.weight.dominant();
      if (p.weight.is_schema_term) {
        out += " (string=" + StrFormat("%.3f", p.weight.string_similarity) +
               " synonym=" + StrFormat("%.3f", p.weight.synonym) + ")";
      } else {
        out += " (pattern=" + StrFormat("%.3f", p.weight.pattern) +
               " instance=" + StrFormat("%.3f", p.weight.instance) + ")";
      }
      if (p.weight.fk_penalized) out += " fk_penalized";
      if (p.weight.instance_miss_penalized) out += " instance_miss";
      if (p.contextual_factor != 1.0) {
        out += " ctx=" + StrFormat("%.3f", p.contextual_factor);
      }
      out += "\n";
    }
  }
  out += "quality: ";
  out += ResultQualityName(quality);
  out += "\n";
  if (trace != nullptr) {
    out += "span tree:\n";
    out += include_timings ? trace->TreeString(/*timings=*/true)
                           : trace->ShapeString();
  }
  return out;
}

PrepareOptions PrepareOptionsFromEngine(const EngineOptions& options) {
  PrepareOptions prepare;
  prepare.weights = options.weights;
  prepare.use_mi_weights = options.use_mi_weights;
  prepare.build_phrase_vocabulary = options.build_phrase_vocabulary;
  return prepare;
}

KeymanticEngine::KeymanticEngine(const Database& db, EngineOptions options)
    : KeymanticEngine(db,
                      PreparedState::Build(db, PrepareOptionsFromEngine(options)),
                      // no move: argument evaluation order is unspecified and
                      // PrepareOptionsFromEngine reads `options` too
                      options) {}

StatusOr<std::unique_ptr<KeymanticEngine>> KeymanticEngine::FromPreparedState(
    const Database& db, std::shared_ptr<const PreparedState> state,
    EngineOptions options) {
  if (state == nullptr) {
    return Status::InvalidArgument("prepared state is null");
  }
  // Prepare-time switches must agree: an engine asked for MI weights (or a
  // phrase vocabulary, or instance lookups) cannot serve them from a state
  // prepared without — and silently serving different answers would be
  // worse than refusing.
  const PrepareOptions& prepared = state->options();
  if (prepared.use_mi_weights != options.use_mi_weights ||
      prepared.build_phrase_vocabulary != options.build_phrase_vocabulary ||
      prepared.weights.use_instance_vocabulary !=
          options.weights.use_instance_vocabulary) {
    return Status::InvalidArgument(
        "prepared state was built under different prepare-time options "
        "(use_mi_weights/build_phrase_vocabulary/use_instance_vocabulary)");
  }
  // The state must describe this database's schema; answering over a
  // mismatched schema would translate to SQL the executor cannot run.
  const auto& state_rels = state->schema().relations();
  const auto& db_rels = db.schema().relations();
  if (state_rels.size() != db_rels.size()) {
    return Status::InvalidArgument(
        "prepared state describes a different schema (relation count " +
        std::to_string(state_rels.size()) + " vs " +
        std::to_string(db_rels.size()) + ")");
  }
  for (size_t i = 0; i < state_rels.size(); ++i) {
    if (state_rels[i].name() != db_rels[i].name() ||
        state_rels[i].arity() != db_rels[i].arity()) {
      return Status::InvalidArgument(
          "prepared state describes a different schema (relation '" +
          state_rels[i].name() + "' vs '" + db_rels[i].name() + "')");
    }
  }
  return std::unique_ptr<KeymanticEngine>(
      new KeymanticEngine(db, std::move(state), std::move(options)));
}

KeymanticEngine::KeymanticEngine(const Database& db,
                                 std::shared_ptr<const PreparedState> state,
                                 EngineOptions options)
    : db_(db),
      options_(std::move(options)),
      state_(std::move(state)),
      steiner_cache_(options_.steiner_cache_capacity) {
  KM_CHECK(state_ != nullptr);
  // The pool must exist before the components that borrow it: the weight
  // builder and the Murty enumeration receive it through their options.
  if (options_.threads > 0) pool_ = std::make_unique<ThreadPool>(options_.threads);
  options_.weights.pool = pool_.get();
  options_.forward.pool = pool_.get();
  // The value index was built (or snapshot-loaded) once, into the state;
  // the per-engine builder borrows it instead of rescanning the instance.
  weights_ = std::make_unique<WeightMatrixBuilder>(
      state_->terminology(), &state_->value_index(), options_.weights);
  // The state's prepare-time prune index turns Build() into the batched,
  // lossless-pruned SW kernel (byte-identical matrices, ~an order of
  // magnitude less scalar similarity work on large terminologies).
  weights_->SetPruneIndex(state_->prune_index());
  generator_ = std::make_unique<ConfigurationGenerator>(
      state_->terminology(), state_->schema(), *weights_, options_.forward);
  // Cache statistics live inside this engine; publish them as snapshot-time
  // collector contributions. AddGauge merges additively, so several live
  // engines compose instead of overwriting one another.
  metrics_collector_id_ = MetricsRegistry::Default().AddCollector(
      [this](MetricsSnapshot* snap) {
        const CacheCounters rows = weights_->RowCacheCounters();
        snap->AddGauge("km.cache.keyword_row.hits", static_cast<double>(rows.hits));
        snap->AddGauge("km.cache.keyword_row.misses",
                       static_cast<double>(rows.misses));
        snap->AddGauge("km.cache.keyword_row.evictions",
                       static_cast<double>(rows.evictions));
        snap->AddGauge("km.cache.keyword_row.entries",
                       static_cast<double>(rows.entries));
        const CacheCounters steiner = steiner_cache_.Counters();
        snap->AddGauge("km.cache.steiner.hits", static_cast<double>(steiner.hits));
        snap->AddGauge("km.cache.steiner.misses",
                       static_cast<double>(steiner.misses));
        snap->AddGauge("km.cache.steiner.evictions",
                       static_cast<double>(steiner.evictions));
        snap->AddGauge("km.cache.steiner.entries",
                       static_cast<double>(steiner.entries));
      });
}

KeymanticEngine::~KeymanticEngine() {
  MetricsRegistry::Default().RemoveCollector(metrics_collector_id_);
}

void KeymanticEngine::SetTrainedHmm(Hmm hmm) {
  trained_hmm_ = std::make_unique<Hmm>(std::move(hmm));
}

std::vector<KeymanticEngine::KeywordMatch> KeymanticEngine::ExplainKeyword(
    const std::string& keyword, size_t limit) const {
  std::vector<KeywordMatch> matches;
  for (size_t t = 0; t < state_->terminology().size(); ++t) {
    double w = weights_->Weight(keyword, state_->terminology().term(t));
    if (w > 0) matches.push_back({t, w});
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const KeywordMatch& a, const KeywordMatch& b) {
                     return a.weight > b.weight;
                   });
  if (matches.size() > limit) matches.resize(limit);
  return matches;
}

StatusOr<std::vector<Explanation>> KeymanticEngine::Search(const std::string& query,
                                                           size_t k) const {
  KM_ASSIGN_OR_RETURN(AnswerResult result, Answer(query, k, nullptr));
  return std::move(result.explanations);
}

StatusOr<std::vector<Explanation>> KeymanticEngine::SearchKeywords(
    const std::vector<std::string>& keywords, size_t k) const {
  KM_ASSIGN_OR_RETURN(AnswerResult result, AnswerKeywords(keywords, k, nullptr));
  return std::move(result.explanations);
}

StatusOr<AnswerResult> KeymanticEngine::Answer(const std::string& query, size_t k,
                                               QueryContext* ctx) const {
  std::shared_ptr<TraceNode> root;
  if (options_.trace) root = TraceNode::Root("answer");
  std::vector<std::string> keywords;
  {
    KM_SPAN(tok_span, root.get(), "tokenize");
    KM_FAILPOINT_CTX("engine.tokenize.fail", ctx);
    KM_RETURN_IF_ERROR(ValidateQueryText(query));
    keywords = Tokenize(query, state_->tokenizer_options());
    if (ctx != nullptr) {
      (void)ctx->CheckPoint(QueryStage::kTokenize, keywords.size() + 1);
    }
    KM_ENSURE_ARG(!keywords.empty(),
                  "query contains no keywords (only stopwords or punctuation)");
    tok_span.Add("keywords", keywords.size());
  }
  auto result = AnswerInternal(keywords, k, ctx, root.get());
  if (result.ok() && root != nullptr) {
    root->End();
    result->trace = std::move(root);
  }
  if (result.ok()) RecordAnswerMetrics(*result);
  return result;
}

StatusOr<std::vector<Configuration>> KeymanticEngine::HmmConfigurations(
    const std::vector<std::string>& keywords, size_t k, const Hmm& hmm,
    QueryContext* ctx, TraceNode* parent) const {
  KM_SPAN(span, parent, "forward.hmm");
  Matrix sim = weights_->Build(keywords, ctx, span.get());
  KM_DCHECK_OK(ValidateWeightMatrix(sim, keywords.size(), state_->terminology().size()));
  // ListViterbi cannot be interrupted midway; when the budget is already
  // gone, return no paths and let the forward ladder pick the cheap rung.
  if (ctx != nullptr && ctx->Exhausted()) return std::vector<Configuration>{};
  Matrix emission = EmissionFromSimilarity(sim);
  KM_ASSIGN_OR_RETURN(std::vector<HmmPath> paths,
                      hmm.ListViterbi(emission, k, /*distinct_states=*/true));
  std::vector<Configuration> configs;
  configs.reserve(paths.size());
  for (HmmPath& p : paths) {
    Configuration c;
    c.term_for_keyword = std::move(p.states);
    c.score = p.log_prob;
    configs.push_back(std::move(c));
  }
  return configs;
}

StatusOr<std::vector<Configuration>> KeymanticEngine::Configurations(
    const std::vector<std::string>& keywords, size_t k) const {
  KM_ASSIGN_OR_RETURN(std::vector<Configuration> configs,
                      ConfigurationsImpl(keywords, k, nullptr, nullptr));
  // Every forward implementation must emit total injective mappings.
  for (const Configuration& c : configs) {
    KM_DCHECK_OK(ValidateConfiguration(c, keywords.size(), state_->terminology()));
  }
  return configs;
}

StatusOr<std::vector<Configuration>> KeymanticEngine::ConfigurationsImpl(
    const std::vector<std::string>& keywords, size_t k, QueryContext* ctx,
    bool* degraded, TraceNode* parent) const {
  // The matching-based rung. Generate() carries its own internal ladder
  // (Murty top-k → Hungarian optimum → greedy); its report says whether
  // any of those fallbacks fired.
  auto hungarian = [&](bool* fell) -> StatusOr<std::vector<Configuration>> {
    ForwardReport report;
    auto configs = generator_->Generate(keywords, k, ctx, &report, parent);
    if (configs.ok() && report.degraded() && fell != nullptr) *fell = true;
    return configs;
  };
  switch (options_.forward_mode) {
    case ForwardMode::kHungarian:
      return hungarian(degraded);
    case ForwardMode::kHmmApriori:
    case ForwardMode::kHmmTrained: {
      const Hmm& hmm =
          options_.forward_mode == ForwardMode::kHmmTrained && trained_hmm_ != nullptr
              ? *trained_hmm_
              : state_->apriori_hmm();
      auto paths = HmmConfigurations(keywords, k, hmm, ctx, parent);
      if (paths.ok() && !paths->empty()) return paths;
      // Without a budget the caller wants the HMM result as-is, error
      // included; with one, exhaustion or failure drops to the bounded
      // Hungarian-optimum rung so a ranked answer still comes back.
      if (ctx == nullptr) return paths;
      if (degraded != nullptr) *degraded = true;
      return hungarian(nullptr);
    }
    case ForwardMode::kCombinedDst: {
      KM_ASSIGN_OR_RETURN(std::vector<Configuration> hung, hungarian(degraded));
      const Hmm& hmm = trained_hmm_ != nullptr ? *trained_hmm_ : state_->apriori_hmm();
      StatusOr<std::vector<Configuration>> hmm_paths =
          HmmConfigurations(keywords, k, hmm, ctx, parent);
      if (ctx != nullptr && (!hmm_paths.ok() || hmm_paths->empty())) {
        // DST needs both evidence sources; degrade to Hungarian-only.
        if (degraded != nullptr) *degraded = true;
        return hung;
      }
      KM_ASSIGN_OR_RETURN(std::vector<Configuration> hmm_configs,
                          std::move(hmm_paths));
      // Universe: union of both lists, keyed by the term vector.
      std::vector<Configuration> universe;
      auto id_of = [&universe](const Configuration& c) -> size_t {
        for (size_t i = 0; i < universe.size(); ++i) {
          if (universe[i] == c) return i;
        }
        universe.push_back(c);
        return universe.size() - 1;
      };
      std::vector<std::pair<size_t, double>> ev_h, ev_m;
      for (const Configuration& c : hung) ev_h.emplace_back(id_of(c), c.score);
      for (const Configuration& c : hmm_configs) ev_m.emplace_back(id_of(c), c.score);
      MassFunction mh = MassFunction::FromScores(ev_h, options_.conf_hungarian);
      MassFunction mm = MassFunction::FromScores(ev_m, options_.conf_hmm);
      auto combined = MassFunction::Combine(mh, mm);
      if (!combined.ok()) return combined.status();
      std::vector<Configuration> out;
      for (const auto& [id, mass] : combined->Ranked()) {
        Configuration c = universe[id];
        c.score = mass;
        out.push_back(std::move(c));
        if (out.size() >= k) break;
      }
      return out;
    }
  }
  return Status::Internal("unknown forward mode");
}

std::vector<Interpretation> KeymanticEngine::FinishInterpretations(
    std::vector<Interpretation> trees) const {
  // Every search rung must emit connected join trees over the full graph
  // (the summary path expands its relation-level trees before returning).
  for (const Interpretation& tree : trees) {
    KM_DCHECK_OK(ValidateInterpretation(tree, state_->graph()));
  }
  RankInterpretations(&trees);
  return trees;
}

std::string KeymanticEngine::SteinerCacheKey(std::vector<size_t> terminals,
                                             size_t k) const {
  std::sort(terminals.begin(), terminals.end());
  std::string key;
  key.reserve(terminals.size() * 4 + 16);
  for (size_t t : terminals) {
    key += std::to_string(t);
    key += ',';
  }
  key += "|k=";
  key += std::to_string(k);
  key += "|m=";
  key += std::to_string(static_cast<int>(options_.backward_mode));
  return key;
}

StatusOr<std::vector<Interpretation>> KeymanticEngine::Interpretations(
    const Configuration& config, size_t k) const {
  std::vector<size_t> terminals = TerminalsOfConfiguration(config);
  // The cache holds exactly what the preferred (budget-free) search of this
  // terminal set produces, so a hit replays this method's own output.
  std::string key = SteinerCacheKey(terminals, k);
  if (auto hit = steiner_cache_.Get(key)) return *hit;
  SteinerOptions opts = options_.steiner;
  opts.k = k;
  std::vector<Interpretation> trees;
  if (options_.backward_mode == BackwardMode::kSummary) {
    KM_ASSIGN_OR_RETURN(trees, state_->summary().TopKTrees(terminals, opts));
  } else {
    KM_ASSIGN_OR_RETURN(trees, TopKSteinerTrees(state_->graph(), terminals, opts));
  }
  trees = FinishInterpretations(std::move(trees));
  if (!trees.empty()) {
    steiner_cache_.Put(key, std::make_shared<std::vector<Interpretation>>(trees));
  }
  return trees;
}

StatusOr<std::vector<Interpretation>> KeymanticEngine::InterpretationsLadder(
    const Configuration& config, size_t k, QueryContext* ctx, bool* degraded,
    TraceNode* parent) const {
  std::vector<size_t> terminals = TerminalsOfConfiguration(config);
  SteinerOptions opts = options_.steiner;
  opts.k = k;
  opts.ctx = ctx;
  const bool prefer_full = options_.backward_mode == BackwardMode::kFullGraph;

  // Rung 1: the configured search. A budget cut inside DPBF surfaces as an
  // empty (or error) result, not a partial ranking, so anything non-empty
  // here is trustworthy.
  if (prefer_full) {
    KM_SPAN(span, parent, "backward.steiner");
    span.Add("terminals", terminals.size());
    auto trees = TopKSteinerTrees(state_->graph(), terminals, opts);
    if (trees.ok() && !trees->empty()) {
      span.Add("trees", trees->size());
      return FinishInterpretations(std::move(*trees));
    }
  }
  // Rung 2: the relation-level summary graph — an order of magnitude fewer
  // states, so it often finishes on the remaining budget.
  {
    KM_SPAN(span, parent, "backward.summary");
    span.Add("terminals", terminals.size());
    auto trees = state_->summary().TopKTrees(terminals, opts);
    if (trees.ok() && !trees->empty()) {
      span.Add("trees", trees->size());
      if (prefer_full && degraded != nullptr) *degraded = true;
      return FinishInterpretations(std::move(*trees));
    }
  }
  // Rung 3 (floor): shortest-path join trees. Polynomial and budget-free —
  // it runs to completion even on an expired deadline, so a connected
  // configuration always yields at least one interpretation.
  KM_SPAN(floor_span, parent, "backward.floor");
  auto trees = ShortestPathTrees(state_->graph(), terminals, k);
  if (!trees.ok()) return trees.status();
  if (trees->empty()) {
    return Status::NotFound("keyword images are not connected in the schema graph");
  }
  if (degraded != nullptr) *degraded = true;
  return FinishInterpretations(std::move(*trees));
}

StatusOr<std::vector<Interpretation>>
KeymanticEngine::CachedInterpretationsLadder(const Configuration& config,
                                             size_t k, QueryContext* ctx,
                                             bool* degraded,
                                             TraceNode* parent) const {
  std::string key = SteinerCacheKey(TerminalsOfConfiguration(config), k);
  if (auto hit = steiner_cache_.Get(key)) {
    if (parent != nullptr) parent->Add("steiner_cache_hits");
    return *hit;
  }
  bool local_degraded = false;
  auto trees = InterpretationsLadder(config, k, ctx, &local_degraded, parent);
  if (local_degraded && degraded != nullptr) *degraded = true;
  // Only full-quality results enter the cache: a fallback-rung or
  // budget-cut tree list must never be replayed for a later query that
  // could have afforded the preferred search, so cache hits cannot change
  // any answer.
  if (trees.ok() && !trees->empty() && !local_degraded &&
      (ctx == nullptr || !ctx->Exhausted())) {
    steiner_cache_.Put(key, std::make_shared<std::vector<Interpretation>>(*trees));
  }
  return trees;
}

StatusOr<SpjQuery> KeymanticEngine::Translate(
    const std::vector<std::string>& keywords, const Configuration& config,
    const Interpretation& interpretation) const {
  KM_FAILPOINT("engine.translate.fail");
  return TranslateToSql(keywords, config, interpretation,
                        state_->terminology(), state_->schema(),
                        state_->graph());
}

StatusOr<AnswerResult> KeymanticEngine::AnswerKeywords(
    const std::vector<std::string>& keywords, size_t k, QueryContext* ctx) const {
  std::shared_ptr<TraceNode> root;
  if (options_.trace) root = TraceNode::Root("answer");
  auto result = AnswerInternal(keywords, k, ctx, root.get());
  if (result.ok() && root != nullptr) {
    root->End();
    result->trace = std::move(root);
  }
  if (result.ok()) RecordAnswerMetrics(*result);
  return result;
}

StatusOr<AnswerResult> KeymanticEngine::AnswerInternal(
    const std::vector<std::string>& keywords, size_t k, QueryContext* ctx,
    TraceNode* root) const {
  KM_ENSURE_ARG(!keywords.empty(), "keyword query is empty");
  KM_ENSURE_ARG(keywords.size() <= kMaxQueryKeywords,
                "keyword query exceeds the keyword limit");
  for (const std::string& kw : keywords) {
    KM_ENSURE_ARG(!kw.empty(), "keyword query contains an empty keyword");
    KM_ENSURE_ARG(IsValidUtf8(kw), "keyword is not valid UTF-8");
    // Covers pre-tokenized callers and quoted phrases, whose internal
    // whitespace lets them slip past ValidateQueryText's per-run bound.
    KM_ENSURE_ARG(kw.size() <= kMaxKeywordLength,
                  "keyword exceeds " + std::to_string(kMaxKeywordLength) +
                      " bytes");
    for (char c : kw) {
      unsigned char b = static_cast<unsigned char>(c);
      KM_ENSURE_ARG(b != 0x7f && (b >= 0x20 || b == '\t'),
                    "keyword contains a control character");
    }
  }
  AnswerResult result;
  AnswerStats& stats = result.stats;

  std::vector<Configuration> configs;
  {
    KM_SPAN(fwd_span, root, "forward");
    KM_ASSIGN_OR_RETURN(configs,
                        ConfigurationsImpl(keywords, options_.config_k, ctx,
                                           &stats.forward_degraded,
                                           fwd_span.get()));
    fwd_span.Add("configurations", configs.size());
  }
  for (const Configuration& c : configs) {
    KM_DCHECK_OK(ValidateConfiguration(c, keywords.size(), state_->terminology()));
  }
  if (configs.empty()) {
    return Status::NotFound("no configuration found for the query");
  }

  // Candidate (configuration, interpretation) pairs. On an exhausted
  // budget the loop stops growing the candidate set — but only after the
  // first (best-ranked) configuration has been expanded, so an answer
  // always survives even a zero deadline.
  struct Candidate {
    size_t config_index;
    Interpretation interp;
  };
  std::vector<Candidate> candidates;
  {
    KM_SPAN(bwd_span, root, "backward");
    // Per-configuration Steiner discovery is independent: every worker
    // writes only its own slot, and the merge below walks the slots in
    // configuration order, so the candidate list matches the serial build
    // exactly. Exhaustion is sticky, so the "stop after the first
    // configuration" guarantee carries over: once the budget dies, every
    // not-yet-started slot beyond index 0 stays empty. Each configuration's
    // span is pinned to its loop index (slot), so the trace tree is also
    // identical between serial and pooled runs.
    std::vector<std::optional<std::vector<Interpretation>>> expanded(configs.size());
    std::vector<uint8_t> degraded_flags(configs.size(), 0);
    std::atomic<bool> truncated{false};
    ParallelFor(pool_.get(), configs.size(), [&](size_t ci) {
      if (ci > 0 && ctx != nullptr && ctx->Exhausted()) {
        truncated.store(true, std::memory_order_relaxed);
        return;
      }
      KM_SPAN_SLOT(cfg_span, bwd_span.get(), "backward.config", ci);
      bool local_degraded = false;
      auto interps = CachedInterpretationsLadder(
          configs[ci], options_.interp_per_config, ctx, &local_degraded,
          cfg_span.get());
      if (local_degraded) degraded_flags[ci] = 1;
      // !ok: disconnected images — orphan configuration, slot stays empty.
      if (interps.ok()) {
        cfg_span.Add("interpretations", interps->size());
        expanded[ci] = std::move(*interps);
      }
    });
    for (size_t ci = 0; ci < configs.size(); ++ci) {
      if (degraded_flags[ci] != 0) stats.backward_degraded = true;
      if (!expanded[ci].has_value()) continue;
      for (Interpretation& interp : *expanded[ci]) {
        candidates.push_back({ci, std::move(interp)});
      }
    }
    if (truncated.load(std::memory_order_relaxed)) {
      stats.candidates_truncated = true;
    }
  }
  if (candidates.empty()) {
    return Status::NotFound("no interpretation connects the keyword images");
  }

  KM_SPAN(combine_span, root, "combine");
  // Normalized forward scores (configurations may carry log-probabilities;
  // shift-normalize like MassFunction does).
  std::vector<double> fwd(configs.size());
  {
    double mn = configs[0].score;
    for (const Configuration& c : configs) mn = std::min(mn, c.score);
    double shift = mn < 0 ? -mn : 0.0;
    double total = 0;
    for (const Configuration& c : configs) total += c.score + shift;
    for (size_t i = 0; i < configs.size(); ++i) {
      fwd[i] = total > 0 ? (configs[i].score + shift) / total
                         : 1.0 / static_cast<double>(configs.size());
    }
  }
  // Normalized backward scores. A configuration is not punished for
  // *intrinsically* needing a long join path: the dominant component is the
  // tree's excess cost over the best tree of its own configuration, plus a
  // weak absolute-coherence component so that, between configurations the
  // forward step cannot separate, the more tightly connected one wins.
  std::vector<double> bwd(candidates.size());
  {
    std::unordered_map<size_t, double> min_cost;  // per configuration
    for (const Candidate& c : candidates) {
      auto it = min_cost.find(c.config_index);
      if (it == min_cost.end() || c.interp.cost < it->second) {
        min_cost[c.config_index] = c.interp.cost;
      }
    }
    double total = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      double rel = candidates[i].interp.cost - min_cost[candidates[i].config_index];
      bwd[i] = 0.8 / (1.0 + rel) + 0.2 / (1.0 + candidates[i].interp.cost);
      total += bwd[i];
    }
    if (total > 0) {
      for (double& b : bwd) b /= total;
    }
  }

  // Combine.
  std::vector<double> combined(candidates.size(), 0.0);
  switch (options_.combine_mode) {
    case CombineMode::kForwardOnly:
      for (size_t i = 0; i < candidates.size(); ++i) {
        combined[i] = fwd[candidates[i].config_index] + 1e-9 * bwd[i];
      }
      break;
    case CombineMode::kBackwardOnly:
      for (size_t i = 0; i < candidates.size(); ++i) combined[i] = bwd[i];
      break;
    case CombineMode::kLinear: {
      double cf = std::clamp(options_.conf_forward, 0.0, 1.0);
      for (size_t i = 0; i < candidates.size(); ++i) {
        combined[i] = cf * fwd[candidates[i].config_index] + (1.0 - cf) * bwd[i];
      }
      break;
    }
    case CombineMode::kDst: {
      std::vector<std::pair<size_t, double>> ev_f, ev_b;
      for (size_t i = 0; i < candidates.size(); ++i) {
        ev_f.emplace_back(i, fwd[candidates[i].config_index]);
        ev_b.emplace_back(i, bwd[i]);
      }
      double cf = std::clamp(options_.conf_forward, 0.0, 1.0);
      MassFunction mf = MassFunction::FromScores(ev_f, cf);
      MassFunction mb = MassFunction::FromScores(ev_b, 1.0 - cf);
      auto m = MassFunction::Combine(mf, mb);
      if (!m.ok()) return m.status();
      for (size_t i = 0; i < candidates.size(); ++i) combined[i] = m->MassOf(i);
      break;
    }
  }

  // Translate, deduplicate by SQL signature (keep the best score), rank.
  KM_SPAN(translate_span, combine_span.get(), "combine.translate");
  std::unordered_map<std::string, size_t> by_signature;
  std::vector<Explanation> results;
  for (size_t i = 0; i < candidates.size(); ++i) {
    auto sql = Translate(keywords, configs[candidates[i].config_index],
                         candidates[i].interp);
    if (!sql.ok()) continue;
    Explanation ex;
    ex.sql = std::move(*sql);
    ex.configuration = configs[candidates[i].config_index];
    ex.interpretation = candidates[i].interp;
    ex.forward_score = fwd[candidates[i].config_index];
    ex.backward_score = bwd[i];
    ex.score = combined[i];
    std::string sig = ex.sql.CanonicalSignature();
    auto it = by_signature.find(sig);
    if (it != by_signature.end()) {
      if (results[it->second].score < ex.score) results[it->second] = std::move(ex);
      continue;
    }
    by_signature[sig] = results.size();
    results.push_back(std::move(ex));
  }
  translate_span.Add("explanations", results.size());
  translate_span.End();
  combine_span.End();
  if (results.empty()) {
    return Status::NotFound("no candidate could be translated to SQL");
  }

  if (options_.penalize_empty_results) {
    KM_SPAN(exec_span, root, "execute");
    // Result probing is the most expensive stage and purely a re-ranking
    // refinement, so it is the first thing dropped under an expired budget.
    if (ctx != nullptr && ctx->Exhausted()) {
      stats.execution_truncated = true;
    } else {
      Executor exec(db_);
      exec.set_gate(options_.execution_gate);
      for (Explanation& ex : results) {
        if (ctx != nullptr && ctx->Exhausted()) {
          stats.execution_truncated = true;
          break;
        }
        auto count = exec.Count(ex.sql, ctx, exec_span.get());
        if (!count.ok() && count.status().code() == StatusCode::kUnavailable) {
          // The gate failed fast (circuit open): the backend is down, so
          // stop probing entirely — the un-probed ranking is still valid.
          stats.execution_truncated = true;
          break;
        }
        if (count.ok() && *count == 0) ex.score *= 0.25;
      }
    }
  }

  std::stable_sort(results.begin(), results.end(),
                   [](const Explanation& a, const Explanation& b) {
                     return a.score > b.score;
                   });
  if (results.size() > k) results.resize(k);
  result.explanations = std::move(results);

  // Quality: the worst thing that happened anywhere in the pipeline.
  ResultQuality q = ResultQuality::kComplete;
  if (stats.forward_degraded || stats.backward_degraded ||
      stats.execution_truncated) {
    q = WorseQuality(q, ResultQuality::kDegraded);
  }
  if (stats.candidates_truncated) q = WorseQuality(q, ResultQuality::kPartial);
  if (ctx != nullptr) {
    // Exhausted() reads the clock directly: a deadline that expired between
    // amortized polls is still reported. Work-budget exhaustion means the
    // answer is merely a subset; an expired deadline (or a cancel) taints
    // the whole run.
    if (ctx->Exhausted()) {
      q = WorseQuality(q, ctx->work_budget_hit()
                              ? ResultQuality::kPartial
                              : ResultQuality::kDeadlineExceeded);
    }
    for (size_t s = 0; s < kNumQueryStages; ++s) {
      stats.stage_spend[s] = ctx->Spend(static_cast<QueryStage>(s));
    }
    stats.elapsed_ms = ctx->ElapsedMillis();
  }
  stats.keyword_row_cache = weights_->RowCacheCounters();
  stats.steiner_cache = steiner_cache_.Counters();
  result.quality = q;
  if (options_.explain) FillProvenance(keywords, &result);
  return result;
}

void KeymanticEngine::FillProvenance(const std::vector<std::string>& keywords,
                                     AnswerResult* result) const {
  if (result->explanations.empty()) return;
  const Configuration& top = result->explanations.front().configuration;
  if (top.term_for_keyword.size() != keywords.size()) return;
  // Contextual factors of the winning configuration, scored left-to-right
  // exactly like the forward re-ranking did.
  std::vector<double> factors;
  Matrix intrinsic = weights_->Build(keywords);
  (void)generator_->contextualizer().ScoreSequenceDetailed(
      intrinsic, top.term_for_keyword, &factors);
  result->provenance.reserve(keywords.size());
  for (size_t i = 0; i < keywords.size(); ++i) {
    KeywordProvenance p;
    p.keyword = keywords[i];
    const DatabaseTerm& term = state_->terminology().term(top.term_for_keyword[i]);
    p.term = term.ToString();
    p.weight = weights_->ExplainWeight(keywords[i], term);
    p.contextual_factor = i < factors.size() ? factors[i] : 1.0;
    result->provenance.push_back(std::move(p));
  }
}

void KeymanticEngine::RecordAnswerMetrics(const AnswerResult& result) const {
  auto& registry = MetricsRegistry::Default();
  static Counter& answers = registry.CounterRef("km.answers.total");
  answers.Increment();
  static Counter* const quality_counters[] = {
      &registry.CounterRef("km.answers.quality.complete"),
      &registry.CounterRef("km.answers.quality.degraded"),
      &registry.CounterRef("km.answers.quality.partial"),
      &registry.CounterRef("km.answers.quality.deadline_exceeded"),
  };
  const size_t q = static_cast<size_t>(result.quality);
  if (q < 4) quality_counters[q]->Increment();
  if (result.stats.elapsed_ms > 0) {
    static Histogram& latency = registry.HistogramRef(
        "km.answer.latency_ms", DefaultLatencyBucketsMs());
    latency.Observe(result.stats.elapsed_ms);
  }
}

std::vector<StatusOr<AnswerResult>> KeymanticEngine::AnswerBatch(
    const std::vector<std::string>& queries, size_t k, QueryContext* ctx) const {
  // Every query reads only immutable prepared state (terminology, graphs,
  // weight builder) plus the two thread-safe caches, so whole queries can
  // run concurrently. Each worker owns one result slot; a query that never
  // ran (the placeholder below) can only be observed if ParallelFor itself
  // misbehaves.
  std::vector<StatusOr<AnswerResult>> results(
      queries.size(),
      StatusOr<AnswerResult>(Status::Internal("query was not evaluated")));
  ParallelFor(pool_.get(), queries.size(),
              [&](size_t i) { results[i] = Answer(queries[i], k, ctx); });
  return results;
}

}  // namespace km
