#include "core/translate.h"

#include <set>

#include "analysis/invariants.h"
#include "common/check.h"

namespace km {

StatusOr<SpjQuery> TranslateToSql(const std::vector<std::string>& keywords,
                                  const Configuration& config,
                                  const Interpretation& interpretation,
                                  const Terminology& terminology,
                                  const DatabaseSchema& schema,
                                  const SchemaGraph& graph) {
  if (keywords.size() != config.term_for_keyword.size()) {
    return Status::InvalidArgument("keyword/configuration arity mismatch");
  }
  // Upstream stages own these invariants; re-checked here in debug builds
  // because translation dereferences term and edge indices from both.
  KM_DCHECK_OK(ValidateConfiguration(config, keywords.size(), terminology));
  KM_DCHECK_OK(ValidateInterpretation(interpretation, graph));
  // The returnable contract at the library boundary: malformed indices in
  // release builds surface as kInternal instead of undefined behaviour.
  for (size_t t : config.term_for_keyword) {
    KM_ENSURE(t < terminology.size(), "configuration term index out of range");
  }
  for (size_t n : interpretation.nodes) {
    KM_ENSURE(n < terminology.size(), "interpretation node out of range");
  }
  for (size_t e : interpretation.edges) {
    KM_ENSURE(e < graph.edges().size(), "interpretation edge out of range");
  }
  SpjQuery sql;

  // FROM: every relation owning a node of the tree.
  std::set<std::string> relations;
  for (size_t n : interpretation.nodes) {
    relations.insert(terminology.term(n).relation);
  }
  for (size_t t : config.term_for_keyword) {
    relations.insert(terminology.term(t).relation);
  }
  sql.relations.assign(relations.begin(), relations.end());

  // JOIN: one equi-join per FK edge of the tree.
  for (size_t e : interpretation.edges) {
    const GraphEdge& edge = graph.edges()[e];
    if (edge.kind != EdgeKind::kForeignKey || edge.fk_index < 0) continue;
    const ForeignKey& fk = schema.foreign_keys()[static_cast<size_t>(edge.fk_index)];
    sql.joins.push_back(
        {{fk.from_relation, fk.from_attribute}, {fk.to_relation, fk.to_attribute}});
  }

  // WHERE: one predicate per keyword mapped to a domain term.
  for (size_t i = 0; i < keywords.size(); ++i) {
    const DatabaseTerm& term = terminology.term(config.term_for_keyword[i]);
    if (term.kind != TermKind::kDomain) continue;
    Predicate p;
    p.attr = {term.relation, term.attribute};
    auto parsed = Value::Parse(keywords[i], term.type);
    if (parsed.ok() && !parsed->is_null()) {
      if (term.type == DataType::kText && term.tag == DomainTag::kFreeText) {
        // Free-text domains (titles, abstracts): substring semantics,
        // mirroring full-text CONTAINS.
        p.op = PredicateOp::kContains;
      } else {
        p.op = PredicateOp::kEq;
      }
      p.value = std::move(*parsed);
    } else {
      p.op = PredicateOp::kContains;
      p.value = Value::Text(keywords[i]);
    }
    sql.predicates.push_back(std::move(p));
  }

  // SELECT: attributes of relations explicitly named by a relation-term
  // node, plus attribute-term images of keywords. An empty select falls
  // back to SELECT R.* over every involved relation (handled by ToSql).
  std::set<std::pair<std::string, std::string>> selected;
  for (size_t n : interpretation.nodes) {
    const DatabaseTerm& t = terminology.term(n);
    if (t.kind != TermKind::kRelation) continue;
    const RelationSchema* rel = schema.FindRelation(t.relation);
    if (rel == nullptr) continue;
    for (const AttributeDef& a : rel->attributes()) {
      selected.insert({t.relation, a.name});
    }
  }
  for (size_t t : config.term_for_keyword) {
    const DatabaseTerm& term = terminology.term(t);
    if (term.kind == TermKind::kAttribute) {
      selected.insert({term.relation, term.attribute});
    }
  }
  for (const auto& [rel, attr] : selected) sql.select.push_back({rel, attr});
  return sql;
}

}  // namespace km
