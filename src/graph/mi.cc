#include "graph/mi.h"

#include <cmath>
#include <unordered_map>

namespace km {

StatusOr<MiStats> ComputeMiDistance(const Database& db, const ForeignKey& fk) {
  const Table* from = db.FindTable(fk.from_relation);
  const Table* to = db.FindTable(fk.to_relation);
  if (from == nullptr || to == nullptr) {
    return Status::NotFound("foreign key references missing table");
  }
  auto from_idx = from->schema().AttributeIndex(fk.from_attribute);
  auto to_idx = to->schema().AttributeIndex(fk.to_attribute);
  if (!from_idx || !to_idx) {
    return Status::NotFound("foreign key references missing attribute");
  }

  // Joint distribution over the full outer join on A1 = A2. Because A2 is
  // the primary key of `to`, every from-tuple with a non-NULL A1 matches
  // exactly one to-tuple, producing pair (v, v); from-tuples with NULL A1
  // produce (NULL, NULL-side) pairs; to-tuples never referenced produce
  // (NULL, v). We track counts keyed by (left value or NULL, right value or
  // NULL) where matched pairs share the same value.
  std::unordered_map<Value, size_t, ValueHash> ref_count;  // value -> #references
  size_t null_fk = 0;
  for (const Row& row : from->rows()) {
    const Value& v = row[*from_idx];
    if (v.is_null()) {
      ++null_fk;
    } else {
      ++ref_count[v];
    }
  }

  // Outcome categories of the joint distribution:
  //   for each to-tuple key v: either matched (count c(v) pairs (v,v)) or
  //   unmatched (one pair (NULL, v));
  //   for each from-tuple with NULL FK: one pair (NULL-left marker).
  // Marginals: X_left takes values {v...} ∪ {NULL}; X_right likewise.
  double total = 0;
  std::vector<std::pair<double, std::pair<int, int>>> cells;  // (count, (l,r)) ids
  // We only need probabilities, identified per distinct (left,right) pair:
  // (v, v) cells: one per referenced key with count c(v).
  // (NULL, v) cells: one per unreferenced key with count 1 — these are
  //   identical in *type* but distinct in value; for entropy purposes each
  //   distinct v is its own outcome.
  // (v, NULL): impossible under FK integrity (a reference always matches).
  // (NULL, NULL): from-tuples with NULL FK.
  //
  // For MI we need marginal probabilities of left values and right values.
  std::unordered_map<Value, double, ValueHash> left_marginal, right_marginal;
  double left_null = 0, right_null = 0;

  std::vector<std::pair<double, std::pair<const Value*, const Value*>>> joint;
  for (const Row& row : to->rows()) {
    const Value& key = row[*to_idx];
    auto it = ref_count.find(key);
    double c = it == ref_count.end() ? 0 : static_cast<double>(it->second);
    if (c > 0) {
      joint.push_back({c, {&key, &key}});
      left_marginal[key] += c;
      right_marginal[key] += c;
      total += c;
    } else {
      joint.push_back({1.0, {nullptr, &key}});
      left_null += 1.0;
      right_marginal[key] += 1.0;
      total += 1.0;
    }
  }
  if (null_fk > 0) {
    joint.push_back({static_cast<double>(null_fk), {nullptr, nullptr}});
    left_null += static_cast<double>(null_fk);
    right_null += static_cast<double>(null_fk);
    total += static_cast<double>(null_fk);
  }

  MiStats stats;
  if (total <= 0) return stats;  // both sides empty: distance 1

  auto lm = [&](const Value* v) {
    return (v == nullptr ? left_null : left_marginal[*v]) / total;
  };
  auto rm = [&](const Value* v) {
    return (v == nullptr ? right_null : right_marginal[*v]) / total;
  };

  double mi = 0, h = 0;
  for (const auto& [count, pair] : joint) {
    double p = count / total;
    if (p <= 0) continue;
    h -= p * std::log2(p);
    double pl = lm(pair.first);
    double pr = rm(pair.second);
    if (pl > 0 && pr > 0) mi += p * std::log2(p / (pl * pr));
  }
  stats.mutual_information = mi;
  stats.joint_entropy = h;
  stats.distance = h > 0 ? 1.0 - mi / h : 1.0;
  if (stats.distance < 0) stats.distance = 0;
  if (stats.distance > 1) stats.distance = 1;
  return stats;
}

Status ApplyMiWeights(const Database& db, SchemaGraph* graph, double min_weight) {
  const auto& fks = db.schema().foreign_keys();
  for (size_t e = 0; e < graph->edge_count(); ++e) {
    const GraphEdge& edge = graph->edges()[e];
    if (edge.kind != EdgeKind::kForeignKey || edge.fk_index < 0) continue;
    if (static_cast<size_t>(edge.fk_index) >= fks.size()) {
      return Status::Internal("foreign-key edge index out of range");
    }
    KM_ASSIGN_OR_RETURN(MiStats stats,
                        ComputeMiDistance(db, fks[static_cast<size_t>(edge.fk_index)]));
    double w = stats.distance;
    if (w < min_weight) w = min_weight;
    graph->SetEdgeWeight(e, w);
  }
  return Status::OK();
}

}  // namespace km
