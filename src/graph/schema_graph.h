// The database graph of the paper (Definition 2.2), built over the schema.
//
// Nodes are database terms (relation, attribute, domain); edges connect
//   * each relation with each of its attributes,
//   * each attribute with its domain,
//   * the domains of two attributes linked by a foreign key.
// Edge weights default to 1 for structural edges; FK edges can carry a
// mutual-information-based distance computed from the instance (see mi.h),
// falling back to 1 when no instance is available (deep-web mode).

#ifndef KM_GRAPH_SCHEMA_GRAPH_H_
#define KM_GRAPH_SCHEMA_GRAPH_H_

#include <optional>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "metadata/term.h"
#include "relational/database.h"

namespace km {

/// Classification of a database-graph edge.
enum class EdgeKind {
  kRelationAttribute = 0,  ///< relation ↔ one of its attributes
  kAttributeDomain = 1,    ///< attribute ↔ its domain
  kForeignKey = 2,         ///< Dom(A1) ↔ Dom(A2) for FK A1→A2
};

/// One (undirected) edge of the database graph.
struct GraphEdge {
  size_t from;  ///< terminology index
  size_t to;    ///< terminology index
  EdgeKind kind;
  double weight;
  /// Index into DatabaseSchema::foreign_keys() for kForeignKey edges.
  int fk_index = -1;
};

/// The database graph over a Terminology.
class SchemaGraph {
 public:
  /// Builds the graph with unit weights on every edge.
  SchemaGraph(const Terminology& terminology, const DatabaseSchema& schema);

  const Terminology& terminology() const { return *terminology_; }
  size_t node_count() const { return adjacency_.size(); }
  size_t edge_count() const { return edges_.size(); }
  const std::vector<GraphEdge>& edges() const { return edges_; }

  /// Edge indices incident to `node`.
  const std::vector<size_t>& EdgesOf(size_t node) const {
    KM_DBOUNDS(node, adjacency_.size());
    return adjacency_[node];
  }

  /// The endpoint of edge `e` that is not `node`.
  size_t OtherEnd(size_t e, size_t node) const {
    KM_DBOUNDS(e, edges_.size());
    const GraphEdge& edge = edges_[e];
    return edge.from == node ? edge.to : edge.from;
  }

  double EdgeWeight(size_t e) const {
    KM_DBOUNDS(e, edges_.size());
    return edges_[e].weight;
  }

  /// Overwrites the weight of edge `e` (used by the MI weighting pass).
  /// Weights are distances; negative values would break Dijkstra and the
  /// Steiner search.
  void SetEdgeWeight(size_t e, double w) {
    KM_BOUNDS(e, edges_.size());
    KM_CHECK_GE(w, 0.0);
    edges_[e].weight = w;
  }

  /// Single-source shortest-path distances (Dijkstra) from `source`;
  /// unreachable nodes get +infinity.
  std::vector<double> Distances(size_t source) const;

  /// Shortest path between two nodes as a list of edge indices (empty when
  /// source == target; nullopt when unreachable).
  std::optional<std::vector<size_t>> ShortestPath(size_t source, size_t target) const;

 private:
  void AddEdge(size_t a, size_t b, EdgeKind kind, double w, int fk_index);

  const Terminology* terminology_;
  std::vector<GraphEdge> edges_;
  std::vector<std::vector<size_t>> adjacency_;
};

}  // namespace km

#endif  // KM_GRAPH_SCHEMA_GRAPH_H_
