#include "graph/schema_graph.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"

namespace km {

SchemaGraph::SchemaGraph(const Terminology& terminology, const DatabaseSchema& schema)
    : terminology_(&terminology) {
  adjacency_.resize(terminology.size());

  for (size_t i = 0; i < terminology.size(); ++i) {
    const DatabaseTerm& t = terminology.term(i);
    if (t.kind == TermKind::kAttribute) {
      auto rel = terminology.RelationTerm(t.relation);
      if (rel) AddEdge(*rel, i, EdgeKind::kRelationAttribute, 1.0, -1);
      auto dom = terminology.DomainTerm(t.relation, t.attribute);
      if (dom) AddEdge(i, *dom, EdgeKind::kAttributeDomain, 1.0, -1);
    }
  }

  const auto& fks = schema.foreign_keys();
  for (size_t f = 0; f < fks.size(); ++f) {
    auto d1 = terminology.DomainTerm(fks[f].from_relation, fks[f].from_attribute);
    auto d2 = terminology.DomainTerm(fks[f].to_relation, fks[f].to_attribute);
    if (d1 && d2) {
      AddEdge(*d1, *d2, EdgeKind::kForeignKey, 1.0, static_cast<int>(f));
    }
  }
}

void SchemaGraph::AddEdge(size_t a, size_t b, EdgeKind kind, double w, int fk_index) {
  KM_BOUNDS(a, adjacency_.size());
  KM_BOUNDS(b, adjacency_.size());
  KM_CHECK_NE(a, b);
  KM_CHECK_GE(w, 0.0);
  GraphEdge e{a, b, kind, w, fk_index};
  size_t idx = edges_.size();
  edges_.push_back(e);
  adjacency_[a].push_back(idx);
  adjacency_[b].push_back(idx);
}

std::vector<double> SchemaGraph::Distances(size_t source) const {
  KM_BOUNDS(source, node_count());
  std::vector<double> dist(node_count(), std::numeric_limits<double>::infinity());
  dist[source] = 0;
  using Item = std::pair<double, size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0, source});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    for (size_t e : adjacency_[v]) {
      size_t u = OtherEnd(e, v);
      double nd = d + edges_[e].weight;
      if (nd < dist[u]) {
        dist[u] = nd;
        pq.push({nd, u});
      }
    }
  }
  return dist;
}

std::optional<std::vector<size_t>> SchemaGraph::ShortestPath(size_t source,
                                                             size_t target) const {
  KM_BOUNDS(source, node_count());
  KM_BOUNDS(target, node_count());
  if (source == target) return std::vector<size_t>{};
  std::vector<double> dist(node_count(), std::numeric_limits<double>::infinity());
  std::vector<ssize_t> via_edge(node_count(), -1);
  dist[source] = 0;
  using Item = std::pair<double, size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0, source});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    if (v == target) break;
    for (size_t e : adjacency_[v]) {
      size_t u = OtherEnd(e, v);
      double nd = d + edges_[e].weight;
      if (nd < dist[u]) {
        dist[u] = nd;
        via_edge[u] = static_cast<ssize_t>(e);
        pq.push({nd, u});
      }
    }
  }
  if (via_edge[target] < 0) return std::nullopt;
  std::vector<size_t> path;
  size_t cur = target;
  while (cur != source) {
    size_t e = static_cast<size_t>(via_edge[cur]);
    path.push_back(e);
    cur = OtherEnd(e, cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace km
