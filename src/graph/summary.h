// Summary graphs: the condensed relation-level view of the database graph
// (the paper family's optimization for large schemas).
//
// The full database graph has a node per term (relation, attribute,
// domain); its Steiner search scales with 3^terminals · nodes. The summary
// graph keeps one node per *relation* and one meta-edge per foreign key,
// each meta-edge standing for the Dom—Dom path of the full graph (and
// carrying its weight). Steiner search over the summary graph is an order
// of magnitude smaller; the resulting relation trees are then expanded
// back into full interpretations by re-inserting the attribute/domain
// nodes of the keyword images.

#ifndef KM_GRAPH_SUMMARY_H_
#define KM_GRAPH_SUMMARY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/interpretation.h"
#include "graph/schema_graph.h"

namespace km {

/// The condensed relation-level graph.
class SummaryGraph {
 public:
  /// Builds the summary of `full`: one node per relation, one meta-edge
  /// per foreign-key edge of the full graph (weight = FK edge weight plus
  /// the structural hops it stands for).
  explicit SummaryGraph(const SchemaGraph& full);

  size_t relation_count() const { return relations_.size(); }
  const std::vector<std::string>& relations() const { return relations_; }

  /// Ordinal of a relation in the summary (nullopt when unknown).
  std::optional<size_t> RelationOrdinal(const std::string& relation) const;

  /// Finds up to k cheapest relation-level trees covering the relations of
  /// `terminals` (terminology indices into the *full* graph), then expands
  /// each back into a full Interpretation over the full graph.
  ///
  /// Expansion re-attaches, for every terminal term, the structural path
  /// from its relation node (relation → attribute → domain), and maps
  /// every meta-edge back to its FK edge plus the attribute/domain hops.
  StatusOr<std::vector<Interpretation>> TopKTrees(
      const std::vector<size_t>& terminals, const SteinerOptions& options = {}) const;

  /// Underlying full graph.
  const SchemaGraph& full() const { return *full_; }

  struct MetaEdge {
    size_t from_rel;
    size_t to_rel;
    double weight;
    size_t fk_edge;  ///< edge index in the full graph
  };

  /// The relation-level meta-edges in deterministic build order (exposed
  /// for snapshot serialization and structural verification).
  const std::vector<MetaEdge>& meta_edges() const { return edges_; }

 private:
  const SchemaGraph* full_;
  std::vector<std::string> relations_;
  std::unordered_map<std::string, size_t> ordinal_;
  std::vector<MetaEdge> edges_;
  std::vector<std::vector<size_t>> adjacency_;  // relation ordinal -> edge idx
};

}  // namespace km

#endif  // KM_GRAPH_SUMMARY_H_
