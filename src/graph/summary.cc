#include "graph/summary.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <set>
#include <unordered_set>

#include "common/failpoint.h"

namespace km {

SummaryGraph::SummaryGraph(const SchemaGraph& full) : full_(&full) {
  const Terminology& terminology = full.terminology();
  for (size_t i = 0; i < terminology.size(); ++i) {
    const DatabaseTerm& t = terminology.term(i);
    if (t.kind == TermKind::kRelation && ordinal_.count(t.relation) == 0) {
      ordinal_[t.relation] = relations_.size();
      relations_.push_back(t.relation);
    }
  }
  adjacency_.resize(relations_.size());
  for (size_t e = 0; e < full.edge_count(); ++e) {
    const GraphEdge& edge = full.edges()[e];
    if (edge.kind != EdgeKind::kForeignKey) continue;
    const DatabaseTerm& a = terminology.term(edge.from);
    const DatabaseTerm& b = terminology.term(edge.to);
    auto ra = ordinal_.find(a.relation);
    auto rb = ordinal_.find(b.relation);
    if (ra == ordinal_.end() || rb == ordinal_.end()) continue;
    MetaEdge meta;
    meta.from_rel = ra->second;
    meta.to_rel = rb->second;
    // The meta-edge stands for rel—attr—dom—[FK]—dom—attr—rel: the FK
    // weight plus four structural unit hops.
    meta.weight = edge.weight + 4.0;
    meta.fk_edge = e;
    size_t idx = edges_.size();
    edges_.push_back(meta);
    adjacency_[meta.from_rel].push_back(idx);
    adjacency_[meta.to_rel].push_back(idx);
  }
}

std::optional<size_t> SummaryGraph::RelationOrdinal(const std::string& relation) const {
  auto it = ordinal_.find(relation);
  if (it == ordinal_.end()) return std::nullopt;
  return it->second;
}

namespace {

// Finds the full-graph edge of the given kind between two nodes.
std::optional<size_t> FindEdge(const SchemaGraph& g, size_t u, size_t v) {
  for (size_t e : g.EdgesOf(u)) {
    if (g.OtherEnd(e, u) == v) return e;
  }
  return std::nullopt;
}

// Adds the structural chain of a term into the edge set: relation terms add
// nothing; attribute terms add rel—attr; domain terms add rel—attr—dom.
bool AddTermChain(const SchemaGraph& g, size_t term_index, std::set<size_t>* edges) {
  const Terminology& t = g.terminology();
  const DatabaseTerm& term = t.term(term_index);
  if (term.kind == TermKind::kRelation) return true;
  auto rel = t.RelationTerm(term.relation);
  auto attr = t.AttributeTerm(term.relation, term.attribute);
  if (!rel || !attr) return false;
  auto rel_attr = FindEdge(g, *rel, *attr);
  if (!rel_attr) return false;
  edges->insert(*rel_attr);
  if (term.kind == TermKind::kDomain) {
    auto dom = t.DomainTerm(term.relation, term.attribute);
    if (!dom) return false;
    auto attr_dom = FindEdge(g, *attr, *dom);
    if (!attr_dom) return false;
    edges->insert(*attr_dom);
  }
  return true;
}

}  // namespace

StatusOr<std::vector<Interpretation>> SummaryGraph::TopKTrees(
    const std::vector<size_t>& terminals, const SteinerOptions& options) const {
  KM_FAILPOINT("backward.summary.fail");
  if (terminals.empty()) {
    return Status::InvalidArgument("terminal set is empty");
  }
  const Terminology& terminology = full_->terminology();

  // Terminal relations (deduplicated, order-preserving).
  std::vector<size_t> term_rels;
  for (size_t t : terminals) {
    if (t >= terminology.size()) return Status::OutOfRange("terminal out of range");
    auto ord = RelationOrdinal(terminology.term(t).relation);
    if (!ord) return Status::NotFound("terminal relation not in summary");
    if (std::find(term_rels.begin(), term_rels.end(), *ord) == term_rels.end()) {
      term_rels.push_back(*ord);
    }
  }
  if (term_rels.size() >= 16) {
    return Status::InvalidArgument("too many terminal relations");
  }

  // k-best DPBF over the summary graph (same scheme as the full-graph
  // search, on a graph one order of magnitude smaller).
  const size_t g = term_rels.size();
  const uint32_t full_mask = static_cast<uint32_t>((1u << g) - 1);
  const size_t cap = options.per_state_cap > 0 ? options.per_state_cap
                                               : std::max<size_t>(options.k, 1);
  struct Entry {
    double cost;
    int prov;  // -1 init; >=0: grow via edge; -2: merge
    uint32_t edge = 0;
    uint32_t a_state = 0, a_idx = 0, b_state = 0, b_idx = 0;
  };
  struct Candidate {
    double cost;
    uint32_t state;
    Entry entry;
    bool operator>(const Candidate& o) const { return cost > o.cost; }
  };
  const size_t num_states = relations_.size() << g;
  std::vector<std::vector<Entry>> states(num_states);
  auto state_id = [&](size_t v, uint32_t mask) {
    return static_cast<uint32_t>((v << g) | mask);
  };
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> pq;
  for (size_t i = 0; i < g; ++i) {
    pq.push({0.0, state_id(term_rels[i], 1u << i), Entry{0.0, -1}});
  }

  // Collected relation-level trees as sets of meta-edge indices + root.
  struct RelTree {
    std::set<size_t> meta_edges;
    size_t root;
    double cost;
  };
  std::vector<RelTree> rel_trees;
  std::unordered_set<std::string> seen;
  size_t pops = 0;

  std::function<void(uint32_t, uint32_t, std::set<size_t>*)> collect =
      [&](uint32_t state, uint32_t idx, std::set<size_t>* out) {
        const Entry& e = states[state][idx];
        if (e.prov == -1) return;
        if (e.prov >= 0) {
          out->insert(e.edge);
          collect(e.a_state, e.a_idx, out);
        } else {
          collect(e.a_state, e.a_idx, out);
          collect(e.b_state, e.b_idx, out);
        }
      };

  while (!pq.empty() && rel_trees.size() < options.k && pops < options.max_pops) {
    // Same budget observation as the full-graph DPBF; the summary search
    // is an order of magnitude smaller but still exponential in terminals.
    if (options.ctx != nullptr && options.ctx->CheckPoint(QueryStage::kBackward)) {
      break;
    }
    Candidate cand = pq.top();
    pq.pop();
    ++pops;
    std::vector<Entry>& list = states[cand.state];
    if (list.size() >= cap) continue;
    uint32_t my_idx = static_cast<uint32_t>(list.size());
    list.push_back(cand.entry);
    size_t v = cand.state >> g;
    uint32_t mask = cand.state & full_mask;

    if (mask == full_mask) {
      RelTree tree;
      tree.root = v;
      tree.cost = cand.cost;
      collect(cand.state, my_idx, &tree.meta_edges);
      std::string sig;
      for (size_t e : tree.meta_edges) sig += std::to_string(e) + ",";
      if (sig.empty()) sig = "@" + std::to_string(v);
      if (seen.insert(sig).second) rel_trees.push_back(std::move(tree));
      continue;
    }
    for (size_t e : adjacency_[v]) {
      const MetaEdge& me = edges_[e];
      size_t u = me.from_rel == v ? me.to_rel : me.from_rel;
      pq.push({cand.cost + me.weight, state_id(u, mask),
               Entry{cand.cost + me.weight, static_cast<int>(0), /*edge=*/
                     static_cast<uint32_t>(e), cand.state, my_idx}});
    }
    uint32_t comp = full_mask & ~mask;
    for (uint32_t sub = comp; sub != 0; sub = (sub - 1) & comp) {
      uint32_t other_state = state_id(v, sub);
      const auto& other = states[other_state];
      for (uint32_t j = 0; j < other.size(); ++j) {
        Entry entry{cand.cost + other[j].cost, -2, 0, cand.state, my_idx,
                    other_state, j};
        pq.push({entry.cost, state_id(v, mask | sub), entry});
      }
    }
  }

  // Expand each relation-level tree into a full interpretation.
  std::vector<Interpretation> out;
  std::unordered_set<std::string> out_seen;
  for (const RelTree& tree : rel_trees) {
    std::set<size_t> full_edges;
    bool ok = true;
    for (size_t me_idx : tree.meta_edges) {
      const MetaEdge& me = edges_[me_idx];
      const GraphEdge& fk = full_->edges()[me.fk_edge];
      full_edges.insert(me.fk_edge);
      ok &= AddTermChain(*full_, fk.from, &full_edges);
      ok &= AddTermChain(*full_, fk.to, &full_edges);
    }
    for (size_t t : terminals) ok &= AddTermChain(*full_, t, &full_edges);
    if (!ok) continue;

    Interpretation interp;
    interp.terminals = terminals;
    interp.edges.assign(full_edges.begin(), full_edges.end());
    std::set<size_t> nodes;
    // Seed with the terminal nodes (covers the single-relation case).
    for (size_t t : terminals) nodes.insert(t);
    double cost = 0;
    for (size_t e : interp.edges) {
      nodes.insert(full_->edges()[e].from);
      nodes.insert(full_->edges()[e].to);
      cost += full_->edges()[e].weight;
    }
    // The relation node of a lone terminal relation is not needed; only
    // include relation nodes introduced by edges. (Already handled: nodes
    // come from edges + terminals.)
    interp.nodes.assign(nodes.begin(), nodes.end());
    interp.cost = cost;
    if (out_seen.insert(interp.Signature()).second) out.push_back(std::move(interp));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Interpretation& a, const Interpretation& b) {
                     return a.cost < b.cost;
                   });
  return out;
}

}  // namespace km
