#include "graph/interpretation.h"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_set>

#include "common/failpoint.h"
#include "common/strings.h"

namespace km {

std::string Interpretation::Signature() const {
  std::vector<size_t> sorted_edges = edges;
  std::sort(sorted_edges.begin(), sorted_edges.end());
  std::string sig = "E:";
  for (size_t e : sorted_edges) {
    sig += std::to_string(e);
    sig += ",";
  }
  if (sorted_edges.empty()) {
    sig += "N:";
    for (size_t n : nodes) {
      sig += std::to_string(n);
      sig += ",";
    }
  }
  return sig;
}

std::vector<size_t> Interpretation::SteinerNodes() const {
  std::vector<size_t> out;
  for (size_t n : nodes) {
    if (std::find(terminals.begin(), terminals.end(), n) == terminals.end()) {
      out.push_back(n);
    }
  }
  return out;
}

bool Interpretation::SubsumedBy(const Interpretation& other) const {
  std::vector<size_t> ta = terminals, tb = other.terminals;
  std::sort(ta.begin(), ta.end());
  std::sort(tb.begin(), tb.end());
  if (ta != tb) return false;
  std::vector<size_t> sa = SteinerNodes(), sb = other.SteinerNodes();
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return std::includes(sb.begin(), sb.end(), sa.begin(), sa.end());
}

std::vector<size_t> TerminalsOfConfiguration(const Configuration& config) {
  std::vector<size_t> out;
  for (size_t t : config.term_for_keyword) {
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  }
  return out;
}

void RankInterpretations(std::vector<Interpretation>* interpretations) {
  for (Interpretation& i : *interpretations) i.score = 1.0 / (1.0 + i.cost);
  std::stable_sort(interpretations->begin(), interpretations->end(),
                   [](const Interpretation& a, const Interpretation& b) {
                     return a.score > b.score;
                   });
}

namespace {

// Provenance of a DP entry.
enum class Prov : uint8_t { kInit, kGrow, kMerge };

struct Entry {
  double cost;
  Prov prov;
  uint32_t edge = 0;       // kGrow: edge index used
  uint32_t a_state = 0;    // kGrow/kMerge: first parent state
  uint32_t a_idx = 0;      // first parent entry index
  uint32_t b_state = 0;    // kMerge: second parent state
  uint32_t b_idx = 0;      // second parent entry index
};

struct Candidate {
  double cost;
  uint32_t state;
  Entry entry;
  bool operator>(const Candidate& o) const { return cost > o.cost; }
};

// Reconstructs the edge set of an entry recursively.
void CollectEdges(const std::vector<std::vector<Entry>>& states, uint32_t state,
                  uint32_t idx, std::set<size_t>* edges) {
  const Entry& e = states[state][idx];
  switch (e.prov) {
    case Prov::kInit:
      return;
    case Prov::kGrow:
      edges->insert(e.edge);
      CollectEdges(states, e.a_state, e.a_idx, edges);
      return;
    case Prov::kMerge:
      CollectEdges(states, e.a_state, e.a_idx, edges);
      CollectEdges(states, e.b_state, e.b_idx, edges);
      return;
  }
}

// Checks that `edge_set` forms a tree containing all terminals, fills the
// interpretation's node list, and recomputes the exact cost.
bool BuildTree(const SchemaGraph& graph, const std::vector<size_t>& terminals,
               const std::set<size_t>& edge_set, size_t root,
               Interpretation* out) {
  std::set<size_t> nodes;
  nodes.insert(root);
  double cost = 0;
  for (size_t e : edge_set) {
    const GraphEdge& edge = graph.edges()[e];
    nodes.insert(edge.from);
    nodes.insert(edge.to);
    cost += edge.weight;
  }
  // Tree check: |E| = |V| - 1 and connected.
  if (edge_set.size() + 1 != nodes.size()) return false;
  // Connectivity via BFS restricted to edge_set.
  std::unordered_set<size_t> allowed(edge_set.begin(), edge_set.end());
  std::unordered_set<size_t> visited;
  std::vector<size_t> stack = {root};
  visited.insert(root);
  while (!stack.empty()) {
    size_t v = stack.back();
    stack.pop_back();
    for (size_t e : graph.EdgesOf(v)) {
      if (allowed.count(e) == 0) continue;
      size_t u = graph.OtherEnd(e, v);
      if (visited.insert(u).second) stack.push_back(u);
    }
  }
  if (visited.size() != nodes.size()) return false;
  for (size_t t : terminals) {
    if (nodes.count(t) == 0) return false;
  }
  out->terminals = terminals;
  out->edges.assign(edge_set.begin(), edge_set.end());
  out->nodes.assign(nodes.begin(), nodes.end());
  out->cost = cost;
  return true;
}

}  // namespace

StatusOr<std::vector<Interpretation>> TopKSteinerTrees(
    const SchemaGraph& graph, const std::vector<size_t>& terminals,
    const SteinerOptions& options) {
  KM_FAILPOINT("backward.steiner.node_missing");
  if (terminals.empty()) {
    return Status::InvalidArgument("terminal set is empty");
  }
  if (terminals.size() >= 16) {
    return Status::InvalidArgument("too many terminals for Steiner search");
  }
  {
    std::unordered_set<size_t> uniq(terminals.begin(), terminals.end());
    if (uniq.size() != terminals.size()) {
      return Status::InvalidArgument("terminals must be distinct");
    }
    for (size_t t : terminals) {
      if (t >= graph.node_count()) {
        return Status::OutOfRange("terminal node out of range");
      }
    }
  }

  const size_t g = terminals.size();
  const uint32_t full = static_cast<uint32_t>((1u << g) - 1);
  const size_t cap = options.per_state_cap > 0 ? options.per_state_cap
                                               : std::max<size_t>(options.k, 1);
  const size_t num_states = graph.node_count() << g;

  std::vector<std::vector<Entry>> states(num_states);
  auto state_id = [&](size_t v, uint32_t mask) -> uint32_t {
    return static_cast<uint32_t>((v << g) | mask);
  };

  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> pq;
  for (size_t i = 0; i < g; ++i) {
    Candidate c;
    c.cost = 0;
    c.state = state_id(terminals[i], 1u << i);
    c.entry = Entry{0.0, Prov::kInit};
    pq.push(c);
  }

  std::vector<Interpretation> results;
  std::unordered_set<std::string> seen;
  size_t pops = 0;

  while (!pq.empty() && results.size() < options.k && pops < options.max_pops) {
    // Budget observation: one unit per DP expansion. On exhaustion the
    // trees materialized so far are returned; the engine's ladder decides
    // whether they suffice or a cheaper search must take over.
    if (options.ctx != nullptr && options.ctx->CheckPoint(QueryStage::kBackward)) {
      break;
    }
    KM_FAILPOINT_VISIT("backward.steiner.timeout", options.ctx, nullptr);
    Candidate cand = pq.top();
    pq.pop();
    ++pops;

    std::vector<Entry>& list = states[cand.state];
    if (list.size() >= cap) continue;
    uint32_t my_idx = static_cast<uint32_t>(list.size());
    list.push_back(cand.entry);

    size_t v = cand.state >> g;
    uint32_t mask = cand.state & full;

    if (mask == full) {
      // A complete tree: materialize it.
      std::set<size_t> edge_set;
      CollectEdges(states, cand.state, my_idx, &edge_set);
      Interpretation interp;
      if (BuildTree(graph, terminals, edge_set, v, &interp)) {
        if (seen.insert(interp.Signature()).second) {
          bool subsumed = false;
          if (options.prune_supertrees) {
            for (const Interpretation& prev : results) {
              if (prev.SubsumedBy(interp)) {
                subsumed = true;
                break;
              }
            }
          }
          if (!subsumed) results.push_back(std::move(interp));
        }
      }
      continue;  // growing a full tree further is never useful
    }

    // Grow along incident edges.
    for (size_t e : graph.EdgesOf(v)) {
      size_t u = graph.OtherEnd(e, v);
      Candidate next;
      next.cost = cand.cost + graph.EdgeWeight(e);
      next.state = state_id(u, mask);
      next.entry =
          Entry{next.cost, Prov::kGrow, static_cast<uint32_t>(e), cand.state, my_idx};
      pq.push(next);
    }

    // Merge with disjoint subtrees rooted at the same node.
    uint32_t comp = full & ~mask;
    for (uint32_t sub = comp; sub != 0; sub = (sub - 1) & comp) {
      uint32_t other_state = state_id(v, sub);
      const std::vector<Entry>& other = states[other_state];
      for (uint32_t j = 0; j < other.size(); ++j) {
        Candidate next;
        next.cost = cand.cost + other[j].cost;
        next.state = state_id(v, mask | sub);
        next.entry = Entry{next.cost, Prov::kMerge, 0, cand.state, my_idx,
                           other_state, j};
        pq.push(next);
      }
    }
  }

  std::stable_sort(results.begin(), results.end(),
                   [](const Interpretation& a, const Interpretation& b) {
                     return a.cost < b.cost;
                   });
  return results;
}

StatusOr<std::vector<Interpretation>> ShortestPathTrees(
    const SchemaGraph& graph, const std::vector<size_t>& terminals, size_t k) {
  if (terminals.empty()) {
    return Status::InvalidArgument("terminal set is empty");
  }
  std::vector<Interpretation> results;
  std::unordered_set<std::string> seen;

  for (size_t start = 0; start < terminals.size() && results.size() < k; ++start) {
    // Grow a tree from terminals[start], attaching the closest unconnected
    // terminal by its shortest path to any tree node.
    std::set<size_t> tree_nodes = {terminals[start]};
    std::set<size_t> tree_edges;
    std::vector<size_t> remaining;
    for (size_t i = 0; i < terminals.size(); ++i) {
      if (i != start) remaining.push_back(terminals[i]);
    }
    bool failed = false;
    while (!remaining.empty()) {
      double best_cost = -1;
      size_t best_terminal_pos = 0;
      std::vector<size_t> best_path;
      for (size_t p = 0; p < remaining.size(); ++p) {
        // Shortest path from the terminal to the nearest tree node.
        for (size_t node : tree_nodes) {
          auto path = graph.ShortestPath(remaining[p], node);
          if (!path) continue;
          double c = 0;
          for (size_t e : *path) c += graph.EdgeWeight(e);
          if (best_cost < 0 || c < best_cost) {
            best_cost = c;
            best_terminal_pos = p;
            best_path = *path;
          }
        }
      }
      if (best_cost < 0) {
        failed = true;
        break;
      }
      size_t cur = remaining[best_terminal_pos];
      for (size_t e : best_path) {
        tree_edges.insert(e);
        tree_nodes.insert(graph.edges()[e].from);
        tree_nodes.insert(graph.edges()[e].to);
        cur = graph.OtherEnd(e, cur);
      }
      tree_nodes.insert(remaining[best_terminal_pos]);
      remaining.erase(remaining.begin() + static_cast<ssize_t>(best_terminal_pos));
    }
    if (failed) continue;

    Interpretation interp;
    if (BuildTree(graph, terminals, tree_edges, terminals[start], &interp)) {
      if (seen.insert(interp.Signature()).second) results.push_back(std::move(interp));
    }
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const Interpretation& a, const Interpretation& b) {
                     return a.cost < b.cost;
                   });
  if (results.size() > k) results.resize(k);
  return results;
}

}  // namespace km
