// Mutual-information edge weights for foreign-key edges (Section 3.2 of
// the QUEST family; Yang et al.'s database-summarization distance).
//
// For a foreign key A1 → A2, the joint distribution of (X_A1, X_A2) is
// taken over the full outer join of the two relations on A1 = A2, so that
// dangling tuples contribute (value, NULL) / (NULL, value) pairs. The edge
// weight is the distance
//
//     D(A1, A2) = 1 − I(A1; A2) / H(A1, A2)   ∈ [0, 1]
//
// which is small (informative, likely-joinable) when the join covers most
// tuples and large when the join is sparse. Applying these weights makes
// the Steiner-tree step prefer join paths that actually produce tuples.

#ifndef KM_GRAPH_MI_H_
#define KM_GRAPH_MI_H_

#include "common/status.h"
#include "graph/schema_graph.h"
#include "relational/database.h"

namespace km {

/// Mutual information and joint entropy of one foreign-key pair.
struct MiStats {
  double mutual_information = 0.0;
  double joint_entropy = 0.0;
  /// 1 − I/H (1 when H is 0, i.e. both sides empty).
  double distance = 1.0;
};

/// Computes the MI distance of a single foreign key from the instance.
StatusOr<MiStats> ComputeMiDistance(const Database& db, const ForeignKey& fk);

/// Overwrites the weight of every foreign-key edge of `graph` with its MI
/// distance, clamped to [min_weight, 1] (a zero weight would let Steiner
/// trees traverse joins for free). Structural edges keep their weights.
Status ApplyMiWeights(const Database& db, SchemaGraph* graph,
                      double min_weight = 0.05);

}  // namespace km

#endif  // KM_GRAPH_MI_H_
