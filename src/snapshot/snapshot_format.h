// On-disk format of prepared-state snapshots, and the single registration
// point for section tags (tools/km_lint.py rule R6, mirroring the
// metric_names.h pattern for R5).
//
// A snapshot file is:
//
//   FileHeader                      (32 bytes, little-endian, packed by hand)
//   SectionEntry × section_count    (32 bytes each)
//   index_crc                       (4 bytes: CRC32C of header + table)
//   section payloads                (contiguous, in table order)
//
// Every byte of the file is covered by exactly one checksum: the header and
// section table by index_crc, each payload by its SectionEntry::crc. A
// single flipped bit anywhere therefore fails the load with a typed error
// (kSnapshotChecksumMismatch), and a file cut short at any offset fails
// with kSnapshotTruncated *before* any payload byte is dereferenced — the
// loader validates `total_size <= file size` up front so a truncated mmap
// can never SIGBUS.
//
// All integers are little-endian. Doubles are serialized as their IEEE-754
// bit pattern (uint64), so a save → load round trip is bit-exact. Writers
// emit map-backed sections in sorted order, so saving the same state twice
// yields byte-identical files.
//
// Versioning: bump kSnapshotVersion on any incompatible layout change; the
// loader rejects other versions (and foreign endianness) with
// kSnapshotVersionSkew. Unknown section tags are ignored on load (forward
// compatibility); missing required sections are version skew.

#ifndef KM_SNAPSHOT_SNAPSHOT_FORMAT_H_
#define KM_SNAPSHOT_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace km {

/// First 8 bytes of every snapshot file.
inline constexpr char kSnapshotMagic[8] = {'K', 'M', 'S', 'N',
                                           'A', 'P', '0', '1'};

/// Current format version; bump on incompatible layout changes.
inline constexpr uint32_t kSnapshotVersion = 1;

/// Endianness marker written verbatim; reads back differently on a
/// foreign-endian host, which the loader reports as version skew.
inline constexpr uint32_t kSnapshotEndianMarker = 0x01020304u;

/// Fixed sizes of the hand-packed structures (no struct punning: the
/// writer and loader serialize field by field, so padding rules of the
/// host ABI never leak into the format).
inline constexpr size_t kSnapshotHeaderSize = 32;   // magic+ver+endian+count+reserved+total
inline constexpr size_t kSnapshotSectionEntrySize = 32;  // tag+reserved+offset+size+crc+pad
inline constexpr size_t kSnapshotIndexCrcSize = 4;

/// Hard cap on section_count: far above any real snapshot (which has
/// kNumSnapshotSections sections), low enough that a corrupt count cannot
/// drive a huge table read before the index CRC is even checked.
inline constexpr uint32_t kSnapshotMaxSections = 64;

/// The section-tag catalog (tools/km_lint.py rule R6): every 4-character
/// tag passed to a *Section(...) call in src/ must be registered here.
/// Tags are exactly 4 characters from [A-Z0-9].
///
///   SCHM — database schema: relations, attributes, foreign keys
///   TERM — terminology T(D), verified against re-derivation from SCHM
///   GRPH — schema-graph edges with (possibly MI-rescaled) weights
///   SUMM — summary-graph relations and meta-edges, verified
///   WCFG — prepare-time configuration fingerprint (MI weights on/off, ...)
///   VOCB — multi-word phrase vocabulary (sorted)
///   VIDX — per-domain-term instance value index with occurrence counts
inline constexpr const char* kSnapshotSectionTags[] = {
    "SCHM", "TERM", "GRPH", "SUMM", "WCFG", "VOCB", "VIDX",
};
inline constexpr size_t kNumSnapshotSections =
    sizeof(kSnapshotSectionTags) / sizeof(kSnapshotSectionTags[0]);

}  // namespace km

#endif  // KM_SNAPSHOT_SNAPSHOT_FORMAT_H_
