// Wire codec for relational Values (the VIDX section). Internal to
// src/snapshot/. Kept in one header so the encoder and decoder cannot
// drift apart.

#ifndef KM_SNAPSHOT_VALUE_CODEC_H_
#define KM_SNAPSHOT_VALUE_CODEC_H_

#include "common/status.h"
#include "relational/value.h"
#include "snapshot/wire.h"

namespace km::wire {

// One byte of type tag, then the payload. NULL values never reach the
// value index (the builder skips them), so tag 0 is invalid on the wire.
inline constexpr uint8_t kValInt = 1;
inline constexpr uint8_t kValReal = 2;
inline constexpr uint8_t kValText = 3;
inline constexpr uint8_t kValBool = 4;
inline constexpr uint8_t kValDate = 5;

inline void EncodeValue(Buf& buf, const Value& v) {
  if (v.is_int()) {
    buf.U8(kValInt);
    buf.U64(static_cast<uint64_t>(v.AsInt()));
  } else if (v.is_real()) {
    buf.U8(kValReal);
    buf.F64(v.AsReal());
  } else if (v.is_bool()) {
    buf.U8(kValBool);
    buf.U8(v.AsBool() ? 1 : 0);
  } else if (v.is_text()) {
    buf.U8(v.is_date() ? kValDate : kValText);
    buf.Str(v.AsText());
  } else {
    // NULL: unreachable for index entries; encode as an empty text value
    // so the format stays total.
    buf.U8(kValText);
    buf.Str(std::string());
  }
}

inline Status DecodeValue(Cursor& cur, Value* out) {
  uint8_t tag;
  KM_RETURN_IF_ERROR(cur.U8(&tag));
  switch (tag) {
    case kValInt: {
      uint64_t v;
      KM_RETURN_IF_ERROR(cur.U64(&v));
      *out = Value::Int(static_cast<int64_t>(v));
      return Status::OK();
    }
    case kValReal: {
      double v;
      KM_RETURN_IF_ERROR(cur.F64(&v));
      *out = Value::Real(v);
      return Status::OK();
    }
    case kValBool: {
      uint8_t v;
      KM_RETURN_IF_ERROR(cur.U8(&v));
      *out = Value::Bool(v != 0);
      return Status::OK();
    }
    case kValText:
    case kValDate: {
      std::string s;
      KM_RETURN_IF_ERROR(cur.Str(&s));
      *out = tag == kValDate ? Value::Date(std::move(s))
                             : Value::Text(std::move(s));
      return Status::OK();
    }
    default:
      return Status::SnapshotVersionSkew("unknown value type tag " +
                                         std::to_string(tag) +
                                         " in value index");
  }
}

}  // namespace km::wire

#endif  // KM_SNAPSHOT_VALUE_CODEC_H_
