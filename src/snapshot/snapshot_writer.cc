// SaveSnapshot: deterministic serialization + crash-safe publication.

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "snapshot/crc32c.h"
#include "snapshot/snapshot.h"
#include "snapshot/snapshot_format.h"
#include "snapshot/value_codec.h"
#include "snapshot/wire.h"

namespace km {

namespace {

Counter& SaveCounter(const char* what) {
  return MetricsRegistry::Default().CounterRef(std::string("km.snapshot.save.") +
                                               what);
}

/// Ordered list of (tag, payload) pairs plus the assembly step. Tags are
/// passed as literals at the BeginSection call sites — tools/km_lint.py
/// rule R6 checks each against the snapshot_format.h catalog.
class SectionSet {
 public:
  wire::Buf& BeginSection(const char* tag) {
    sections_.emplace_back(tag, wire::Buf());
    return sections_.back().second;
  }

  /// Header + table + index CRC + payloads, per snapshot_format.h.
  std::string Assemble() const {
    const uint32_t count = static_cast<uint32_t>(sections_.size());
    const size_t index_size = kSnapshotHeaderSize +
                              kSnapshotSectionEntrySize * count +
                              kSnapshotIndexCrcSize;
    uint64_t total_size = index_size;
    for (const auto& [tag, payload] : sections_) total_size += payload.size();

    wire::Buf index;
    index.Raw(kSnapshotMagic, sizeof(kSnapshotMagic));
    index.U32(kSnapshotVersion);
    index.U32(kSnapshotEndianMarker);
    index.U32(count);
    index.U32(0);  // reserved
    index.U64(total_size);
    uint64_t offset = index_size;
    for (const auto& [tag, payload] : sections_) {
      index.Raw(tag, 4);
      index.U32(0);  // reserved
      index.U64(offset);
      index.U64(payload.size());
      index.U32(Crc32c(payload.bytes().data(), payload.size()));
      index.U32(0);  // pad
      offset += payload.size();
    }
    std::string file = index.bytes();
    const uint32_t index_crc = Crc32c(file.data(), file.size());
    for (int i = 0; i < 4; ++i) {
      file.push_back(static_cast<char>(index_crc >> (8 * i)));
    }
    for (const auto& [tag, payload] : sections_) file.append(payload.bytes());
    return file;
  }

 private:
  std::vector<std::pair<const char*, wire::Buf>> sections_;
};

void EncodeSchema(const DatabaseSchema& schema, wire::Buf& buf) {
  buf.U32(static_cast<uint32_t>(schema.relations().size()));
  for (const RelationSchema& rel : schema.relations()) {
    buf.Str(rel.name());
    buf.U32(static_cast<uint32_t>(rel.arity()));
    for (const AttributeDef& attr : rel.attributes()) {
      buf.Str(attr.name);
      buf.U8(static_cast<uint8_t>(attr.type));
      buf.U8(static_cast<uint8_t>(attr.tag));
      // is_foreign_key is deliberately NOT serialized: the loader re-derives
      // it by replaying the FK list through the catalog's validating API.
      buf.U8(attr.is_primary_key ? 1 : 0);
    }
  }
  buf.U32(static_cast<uint32_t>(schema.foreign_keys().size()));
  for (const ForeignKey& fk : schema.foreign_keys()) {
    buf.Str(fk.from_relation);
    buf.Str(fk.from_attribute);
    buf.Str(fk.to_relation);
    buf.Str(fk.to_attribute);
  }
}

void EncodeTerminology(const Terminology& term, wire::Buf& buf) {
  buf.U32(static_cast<uint32_t>(term.size()));
  for (const DatabaseTerm& t : term.terms()) {
    buf.U8(static_cast<uint8_t>(t.kind));
    buf.Str(t.relation);
    buf.Str(t.attribute);
    buf.U8(static_cast<uint8_t>(t.type));
    buf.U8(static_cast<uint8_t>(t.tag));
    buf.U8(t.is_foreign_key ? 1 : 0);
  }
}

void EncodeGraph(const SchemaGraph& graph, wire::Buf& buf) {
  buf.U32(static_cast<uint32_t>(graph.edge_count()));
  for (const GraphEdge& e : graph.edges()) {
    buf.U32(static_cast<uint32_t>(e.from));
    buf.U32(static_cast<uint32_t>(e.to));
    buf.U8(static_cast<uint8_t>(e.kind));
    buf.I32(e.fk_index);
    buf.F64(e.weight);
  }
}

void EncodeSummary(const SummaryGraph& summary, wire::Buf& buf) {
  buf.U32(static_cast<uint32_t>(summary.relations().size()));
  for (const std::string& rel : summary.relations()) buf.Str(rel);
  buf.U32(static_cast<uint32_t>(summary.meta_edges().size()));
  for (const SummaryGraph::MetaEdge& e : summary.meta_edges()) {
    buf.U64(e.from_rel);
    buf.U64(e.to_rel);
    buf.U64(e.fk_edge);
    buf.F64(e.weight);
  }
}

void EncodeConfig(const PrepareOptions& options, wire::Buf& buf) {
  buf.U8(options.use_mi_weights ? 1 : 0);
  buf.U8(options.build_phrase_vocabulary ? 1 : 0);
  buf.U8(options.weights.use_instance_vocabulary ? 1 : 0);
  buf.U8(0);  // reserved
}

void EncodeVocabulary(const TokenizerOptions& tok, wire::Buf& buf) {
  // unordered_set iteration order is nondeterministic; sort so repeated
  // saves of the same state are byte-identical.
  std::vector<std::string> phrases(tok.phrase_vocabulary.begin(),
                                   tok.phrase_vocabulary.end());
  std::sort(phrases.begin(), phrases.end());
  buf.U32(static_cast<uint32_t>(phrases.size()));
  for (const std::string& p : phrases) buf.Str(p);
}

void EncodeValueIndex(const std::vector<ValueIndexEntry>& index,
                      wire::Buf& buf) {
  buf.U8(index.empty() ? 0 : 1);
  if (index.empty()) return;
  buf.U32(static_cast<uint32_t>(index.size()));
  for (const ValueIndexEntry& entry : index) {
    // Sorted for determinism (the backing maps are unordered).
    std::vector<std::pair<std::string, size_t>> text(entry.text_values.begin(),
                                                     entry.text_values.end());
    std::sort(text.begin(), text.end());
    buf.U32(static_cast<uint32_t>(text.size()));
    for (const auto& [value, count] : text) {
      buf.Str(value);
      buf.U64(count);
    }
    std::vector<std::pair<Value, size_t>> other(entry.other_values.begin(),
                                                entry.other_values.end());
    std::sort(other.begin(), other.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    buf.U32(static_cast<uint32_t>(other.size()));
    for (const auto& [value, count] : other) {
      wire::EncodeValue(buf, value);
      buf.U64(count);
    }
  }
}

Status IoError(const std::string& op, const std::string& path) {
  return Status::Internal(op + " failed for snapshot '" + path +
                          "': " + std::strerror(errno));
}

/// Writes `bytes` to `path` via temp file + fsync + atomic rename + parent
/// directory fsync.
Status WriteFileDurably(const std::string& bytes, const std::string& path) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("open", tmp);
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status err = IoError("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return err;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status err = IoError("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return err;
  }
  if (::close(fd) != 0) {
    Status err = IoError("close", tmp);
    ::unlink(tmp.c_str());
    return err;
  }
  // A simulated crash here leaves the durable temp file stranded and the
  // destination untouched — exactly the torn-deploy scenario the loader
  // and reload ladder must survive.
  KM_FAILPOINT("snapshot.write.crash_before_rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status err = IoError("rename", path);
    ::unlink(tmp.c_str());
    return err;
  }
  // Make the rename itself durable: fsync the containing directory.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    (void)::fsync(dfd);  // best effort: some filesystems reject dir fsync
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace

Status SaveSnapshot(const PreparedState& state, const std::string& path,
                    TraceNode* parent) {
  KM_SPAN(span, parent, "snapshot.save");
  SaveCounter("total").Increment();

  SectionSet sections;
  EncodeSchema(state.schema(), sections.BeginSection("SCHM"));
  EncodeTerminology(state.terminology(), sections.BeginSection("TERM"));
  EncodeGraph(state.graph(), sections.BeginSection("GRPH"));
  EncodeSummary(state.summary(), sections.BeginSection("SUMM"));
  EncodeConfig(state.options(), sections.BeginSection("WCFG"));
  EncodeVocabulary(state.tokenizer_options(), sections.BeginSection("VOCB"));
  EncodeValueIndex(state.value_index(), sections.BeginSection("VIDX"));

  const std::string bytes = sections.Assemble();
  span.Add("bytes", bytes.size());

  Status written = WriteFileDurably(bytes, path);
  if (!written.ok()) {
    SaveCounter("failures").Increment();
    return written;
  }
  SaveCounter("bytes").Increment(bytes.size());
  return Status::OK();
}

}  // namespace km
