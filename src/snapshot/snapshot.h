// Crash-safe save / corruption-tolerant load of prepared engine state.
//
// SaveSnapshot serializes a PreparedState into the sectioned, per-section-
// checksummed format of snapshot_format.h, crash-safely: the bytes go to a
// temp file in the target directory, are fsync'ed, and only then renamed
// over the destination (rename(2) is atomic within a filesystem), so a
// crash at any instant leaves either the old snapshot or the new one —
// never a torn file at the final path.
//
// LoadSnapshot memory-maps the file read-only and validates before it
// trusts: magic/version/endianness, the index checksum over header and
// section table, per-section CRC32C, and finally a semantic verification
// pass (PreparedState::Assemble re-derives terminology/graph/summary from
// the decoded schema and compares). Corruption yields typed errors:
//
//   kSnapshotTruncated        — file shorter than its own length fields
//   kSnapshotChecksumMismatch — some checksum failed (bit rot, tampering)
//   kSnapshotVersionSkew      — wrong magic/version/endianness, or content
//                               a compatible build could not have written
//
// The loader never dereferences a byte past the validated file size, so a
// truncated file cannot SIGBUS the process through the mapping.
//
// Failpoint sites (Debug / -DKM_FAILPOINTS=ON):
//   snapshot.write.crash_before_rename — simulate a crash after the temp
//     file is durable but before the atomic rename publishes it;
//   snapshot.load.short_read — callback may shrink the perceived file size
//     (simulates a torn write / partial read);
//   snapshot.load.bit_flip — callback may corrupt a computed section CRC
//     (deterministically exercises the checksum-mismatch path).

#ifndef KM_SNAPSHOT_SNAPSHOT_H_
#define KM_SNAPSHOT_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "common/trace.h"
#include "core/prepared_state.h"

namespace km {

/// Serializes `state` to `path` crash-safely (temp file + fsync + atomic
/// rename + directory fsync). Deterministic: saving the same state twice
/// produces byte-identical files. `parent` (nullable) hosts a
/// "snapshot.save" span. Metrics: km.snapshot.save.{total,failures,bytes}.
Status SaveSnapshot(const PreparedState& state, const std::string& path,
                    TraceNode* parent = nullptr);

/// Loads, validates and assembles a snapshot written by SaveSnapshot.
/// `parent` (nullable) hosts a "snapshot.load" span. Metrics:
/// km.snapshot.load.{total,failures,failures.truncated,
/// failures.checksum_mismatch,failures.version_skew}.
StatusOr<std::shared_ptr<const PreparedState>> LoadSnapshot(
    const std::string& path, TraceNode* parent = nullptr);

}  // namespace km

#endif  // KM_SNAPSHOT_SNAPSHOT_H_
