// Software CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// Table-driven, byte at a time — fast enough for snapshot save/load (the
// payloads are metadata-sized, not instance-sized) and dependency-free.
// The Castagnoli polynomial is the storage-industry default (iSCSI, ext4,
// LevelDB/RocksDB file formats) with better error-detection properties
// than CRC32/zlib for short messages.

#ifndef KM_SNAPSHOT_CRC32C_H_
#define KM_SNAPSHOT_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace km {

/// Extends `crc` with `data[0..n)`. Start from 0 for a fresh checksum.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC32C of one contiguous buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace km

#endif  // KM_SNAPSHOT_CRC32C_H_
