// LoadSnapshot: mmap + validate + decode + PreparedState::Assemble.
//
// Trust boundary: the file is external input. Nothing is believed until it
// is checked — structure against the file size (truncation can never run
// the parser off the mapping), contents against CRC32C, decoded enums
// against their ranges, and finally the whole decoded state against a
// re-derivation from the schema (PreparedState::Assemble). Every failure
// is a typed Status; no path aborts.

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "snapshot/crc32c.h"
#include "snapshot/snapshot.h"
#include "snapshot/snapshot_format.h"
#include "snapshot/value_codec.h"
#include "snapshot/wire.h"

namespace km {

namespace {

Counter& LoadCounter(const char* what) {
  return MetricsRegistry::Default().CounterRef(std::string("km.snapshot.load.") +
                                               what);
}

void CountFailure(const Status& s) {
  LoadCounter("failures").Increment();
  switch (s.code()) {
    case StatusCode::kSnapshotTruncated:
      LoadCounter("failures.truncated").Increment();
      break;
    case StatusCode::kSnapshotChecksumMismatch:
      LoadCounter("failures.checksum_mismatch").Increment();
      break;
    case StatusCode::kSnapshotVersionSkew:
      LoadCounter("failures.version_skew").Increment();
      break;
    default:
      break;
  }
}

/// Read-only mapping of a whole file; unmapped on scope exit.
class MappedFile {
 public:
  static StatusOr<MappedFile> Open(const std::string& path) {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) {
        return Status::NotFound("snapshot file not found: " + path);
      }
      return Status::Internal("open failed for snapshot '" + path +
                              "': " + std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      Status err = Status::Internal("fstat failed for snapshot '" + path +
                                    "': " + std::strerror(errno));
      ::close(fd);
      return err;
    }
    MappedFile mf;
    mf.size_ = static_cast<size_t>(st.st_size);
    if (mf.size_ > 0) {
      void* p = ::mmap(nullptr, mf.size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (p == MAP_FAILED) {
        Status err = Status::Internal("mmap failed for snapshot '" + path +
                                      "': " + std::strerror(errno));
        ::close(fd);
        return err;
      }
      mf.data_ = p;
    }
    ::close(fd);  // the mapping keeps the file alive
    return mf;
  }

  MappedFile() = default;
  MappedFile(MappedFile&& o) noexcept : data_(o.data_), size_(o.size_) {
    o.data_ = nullptr;
    o.size_ = 0;
  }
  MappedFile& operator=(MappedFile&& o) noexcept {
    if (this != &o) {
      Unmap();
      data_ = o.data_;
      size_ = o.size_;
      o.data_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() { Unmap(); }

  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }

 private:
  void Unmap() {
    if (data_ != nullptr) ::munmap(data_, size_);
  }

  void* data_ = nullptr;
  size_t size_ = 0;
};

uint32_t ReadU32LE(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ReadU64LE(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

struct SectionView {
  const uint8_t* data = nullptr;
  size_t size = 0;
  bool present = false;
};

/// The validated section table: one slot per catalog tag, unknown tags
/// skipped (forward compatibility — a newer writer may add sections).
struct SectionTable {
  SectionView sections[kNumSnapshotSections];

  StatusOr<SectionView> FindSection(const char* tag) const {
    for (size_t i = 0; i < kNumSnapshotSections; ++i) {
      if (std::strncmp(kSnapshotSectionTags[i], tag, 4) == 0) {
        if (!sections[i].present) {
          return Status::SnapshotVersionSkew(
              std::string("required section '") + tag + "' missing");
        }
        return sections[i];
      }
    }
    return Status::SnapshotVersionSkew(std::string("unknown section tag '") +
                                       tag + "' requested");
  }
};

/// Structural validation: header, section table, checksums. On success the
/// returned views point into the mapping and every byte of the file has
/// been covered by exactly one verified CRC.
Status ValidateStructure(const uint8_t* data, size_t usable,
                         SectionTable* table) {
  if (usable < kSnapshotHeaderSize + kSnapshotIndexCrcSize) {
    return Status::SnapshotTruncated(
        "file too small for a snapshot header (" + std::to_string(usable) +
        " bytes)");
  }
  if (std::memcmp(data, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::SnapshotVersionSkew("bad magic: not a snapshot file");
  }
  const uint32_t version = ReadU32LE(data + 8);
  if (version != kSnapshotVersion) {
    return Status::SnapshotVersionSkew(
        "snapshot format version " + std::to_string(version) +
        ", this build reads version " + std::to_string(kSnapshotVersion));
  }
  const uint32_t endian = ReadU32LE(data + 12);
  if (endian != kSnapshotEndianMarker) {
    return Status::SnapshotVersionSkew(
        "endianness marker mismatch (snapshot written on an incompatible "
        "platform)");
  }
  const uint32_t count = ReadU32LE(data + 16);
  if (count > kSnapshotMaxSections) {
    return Status::SnapshotVersionSkew("section count " +
                                       std::to_string(count) +
                                       " exceeds the format maximum");
  }
  const size_t index_size = kSnapshotHeaderSize +
                            kSnapshotSectionEntrySize * count +
                            kSnapshotIndexCrcSize;
  if (usable < index_size) {
    return Status::SnapshotTruncated("file ends inside the section table");
  }
  // The index checksum covers header + table; a flipped bit anywhere in the
  // metadata fails here before any field is trusted further.
  const uint32_t stored_index_crc = ReadU32LE(data + index_size - 4);
  const uint32_t index_crc = Crc32c(data, index_size - 4);
  if (index_crc != stored_index_crc) {
    return Status::SnapshotChecksumMismatch("section table checksum mismatch");
  }
  const uint64_t total_size = ReadU64LE(data + 24);
  if (total_size > usable) {
    return Status::SnapshotTruncated(
        "file holds " + std::to_string(usable) + " bytes but declares " +
        std::to_string(total_size));
  }
  if (total_size < index_size) {
    return Status::SnapshotVersionSkew(
        "declared total size smaller than the section table");
  }

  for (uint32_t i = 0; i < count; ++i) {
    const uint8_t* entry = data + kSnapshotHeaderSize +
                           static_cast<size_t>(i) * kSnapshotSectionEntrySize;
    const char* tag = reinterpret_cast<const char*>(entry);
    const uint64_t offset = ReadU64LE(entry + 8);
    const uint64_t size = ReadU64LE(entry + 16);
    const uint32_t stored_crc = ReadU32LE(entry + 24);
    const std::string tag_str(tag, 4);
    if (offset < index_size || offset + size < offset ||
        offset + size > total_size) {
      return Status::SnapshotVersionSkew("section '" + tag_str +
                                         "' extends outside the file");
    }
    uint32_t crc = Crc32c(data + offset, size);
    // A scripted callback may corrupt the computed CRC — the deterministic
    // stand-in for a flipped bit in the payload.
    KM_FAILPOINT_VISIT("snapshot.load.bit_flip", nullptr, &crc);
    if (crc != stored_crc) {
      return Status::SnapshotChecksumMismatch("section '" + tag_str +
                                              "' checksum mismatch");
    }
    for (size_t s = 0; s < kNumSnapshotSections; ++s) {
      if (std::strncmp(kSnapshotSectionTags[s], tag, 4) == 0) {
        table->sections[s] = {data + offset, static_cast<size_t>(size), true};
        break;
      }
      // No match: an unknown section from a future writer — ignored.
    }
  }
  return Status::OK();
}

Status RequireClean(const wire::Cursor& cur, const char* tag) {
  if (!cur.AtEnd()) {
    return Status::SnapshotVersionSkew(std::string("section '") + tag +
                                       "' has " +
                                       std::to_string(cur.remaining()) +
                                       " trailing bytes");
  }
  return Status::OK();
}

Status BadEnum(const char* tag, const char* field, unsigned value) {
  return Status::SnapshotVersionSkew(std::string("section '") + tag +
                                     "': " + field + " value " +
                                     std::to_string(value) + " out of range");
}

// Enum ceilings (== the last enumerator of each decoded enum).
constexpr uint8_t kMaxDataType = 4;   // DataType::kDate
constexpr uint8_t kMaxDomainTag = 15; // DomainTag::kFreeText
constexpr uint8_t kMaxTermKind = 2;   // TermKind::kDomain
constexpr uint8_t kMaxEdgeKind = 2;   // EdgeKind::kForeignKey

Status DecodeSchema(const SectionView& sec, DatabaseSchema* schema) {
  wire::Cursor cur(sec.data, sec.size, "section 'SCHM'");
  uint32_t relation_count;
  KM_RETURN_IF_ERROR(cur.U32(&relation_count));
  for (uint32_t r = 0; r < relation_count; ++r) {
    std::string name;
    uint32_t arity;
    KM_RETURN_IF_ERROR(cur.Str(&name));
    KM_RETURN_IF_ERROR(cur.U32(&arity));
    std::vector<AttributeDef> attrs;
    for (uint32_t a = 0; a < arity; ++a) {
      AttributeDef attr;
      uint8_t type, tag, is_pk;
      KM_RETURN_IF_ERROR(cur.Str(&attr.name));
      KM_RETURN_IF_ERROR(cur.U8(&type));
      KM_RETURN_IF_ERROR(cur.U8(&tag));
      KM_RETURN_IF_ERROR(cur.U8(&is_pk));
      if (type > kMaxDataType) return BadEnum("SCHM", "data type", type);
      if (tag > kMaxDomainTag) return BadEnum("SCHM", "domain tag", tag);
      if (is_pk > 1) return BadEnum("SCHM", "primary-key flag", is_pk);
      attr.type = static_cast<DataType>(type);
      attr.tag = static_cast<DomainTag>(tag);
      attr.is_primary_key = is_pk == 1;
      // is_foreign_key is not on the wire: AddForeignKey below re-derives it,
      // so the terminology cross-check in Assemble verifies real consistency.
      attrs.push_back(std::move(attr));
    }
    Status added = schema->AddRelation(RelationSchema(name, std::move(attrs)));
    if (!added.ok()) {
      return Status::SnapshotVersionSkew("section 'SCHM': relation '" + name +
                                         "' rejected by the catalog: " +
                                         added.message());
    }
  }
  uint32_t fk_count;
  KM_RETURN_IF_ERROR(cur.U32(&fk_count));
  for (uint32_t f = 0; f < fk_count; ++f) {
    ForeignKey fk;
    KM_RETURN_IF_ERROR(cur.Str(&fk.from_relation));
    KM_RETURN_IF_ERROR(cur.Str(&fk.from_attribute));
    KM_RETURN_IF_ERROR(cur.Str(&fk.to_relation));
    KM_RETURN_IF_ERROR(cur.Str(&fk.to_attribute));
    Status added = schema->AddForeignKey(fk);
    if (!added.ok()) {
      return Status::SnapshotVersionSkew(
          "section 'SCHM': foreign key " + fk.from_relation + "." +
          fk.from_attribute + " -> " + fk.to_relation + "." + fk.to_attribute +
          " rejected by the catalog: " + added.message());
    }
  }
  return RequireClean(cur, "SCHM");
}

Status DecodeTerminology(const SectionView& sec,
                         std::vector<DatabaseTerm>* terms) {
  wire::Cursor cur(sec.data, sec.size, "section 'TERM'");
  uint32_t count;
  KM_RETURN_IF_ERROR(cur.U32(&count));
  for (uint32_t i = 0; i < count; ++i) {
    DatabaseTerm t;
    uint8_t kind, type, tag, is_fk;
    KM_RETURN_IF_ERROR(cur.U8(&kind));
    KM_RETURN_IF_ERROR(cur.Str(&t.relation));
    KM_RETURN_IF_ERROR(cur.Str(&t.attribute));
    KM_RETURN_IF_ERROR(cur.U8(&type));
    KM_RETURN_IF_ERROR(cur.U8(&tag));
    KM_RETURN_IF_ERROR(cur.U8(&is_fk));
    if (kind > kMaxTermKind) return BadEnum("TERM", "term kind", kind);
    if (type > kMaxDataType) return BadEnum("TERM", "data type", type);
    if (tag > kMaxDomainTag) return BadEnum("TERM", "domain tag", tag);
    if (is_fk > 1) return BadEnum("TERM", "foreign-key flag", is_fk);
    t.kind = static_cast<TermKind>(kind);
    t.type = static_cast<DataType>(type);
    t.tag = static_cast<DomainTag>(tag);
    t.is_foreign_key = is_fk == 1;
    terms->push_back(std::move(t));
  }
  return RequireClean(cur, "TERM");
}

Status DecodeGraph(const SectionView& sec, std::vector<GraphEdge>* edges) {
  wire::Cursor cur(sec.data, sec.size, "section 'GRPH'");
  uint32_t count;
  KM_RETURN_IF_ERROR(cur.U32(&count));
  for (uint32_t i = 0; i < count; ++i) {
    GraphEdge e;
    uint32_t from, to;
    uint8_t kind;
    KM_RETURN_IF_ERROR(cur.U32(&from));
    KM_RETURN_IF_ERROR(cur.U32(&to));
    KM_RETURN_IF_ERROR(cur.U8(&kind));
    KM_RETURN_IF_ERROR(cur.I32(&e.fk_index));
    KM_RETURN_IF_ERROR(cur.F64(&e.weight));
    if (kind > kMaxEdgeKind) return BadEnum("GRPH", "edge kind", kind);
    e.from = from;
    e.to = to;
    e.kind = static_cast<EdgeKind>(kind);
    edges->push_back(e);
  }
  return RequireClean(cur, "GRPH");
}

Status DecodeSummary(const SectionView& sec,
                     PreparedState::SummaryExpectation* summary) {
  wire::Cursor cur(sec.data, sec.size, "section 'SUMM'");
  uint32_t relation_count;
  KM_RETURN_IF_ERROR(cur.U32(&relation_count));
  for (uint32_t i = 0; i < relation_count; ++i) {
    std::string rel;
    KM_RETURN_IF_ERROR(cur.Str(&rel));
    summary->relations.push_back(std::move(rel));
  }
  uint32_t edge_count;
  KM_RETURN_IF_ERROR(cur.U32(&edge_count));
  for (uint32_t i = 0; i < edge_count; ++i) {
    PreparedState::SummaryExpectation::Edge e;
    KM_RETURN_IF_ERROR(cur.U64(&e.from_rel));
    KM_RETURN_IF_ERROR(cur.U64(&e.to_rel));
    KM_RETURN_IF_ERROR(cur.U64(&e.fk_edge));
    KM_RETURN_IF_ERROR(cur.F64(&e.weight));
    summary->edges.push_back(e);
  }
  return RequireClean(cur, "SUMM");
}

Status DecodeConfig(const SectionView& sec, PrepareOptions* options) {
  wire::Cursor cur(sec.data, sec.size, "section 'WCFG'");
  uint8_t mi, vocab, instance, reserved;
  KM_RETURN_IF_ERROR(cur.U8(&mi));
  KM_RETURN_IF_ERROR(cur.U8(&vocab));
  KM_RETURN_IF_ERROR(cur.U8(&instance));
  KM_RETURN_IF_ERROR(cur.U8(&reserved));
  if (mi > 1) return BadEnum("WCFG", "use_mi_weights", mi);
  if (vocab > 1) return BadEnum("WCFG", "build_phrase_vocabulary", vocab);
  if (instance > 1) return BadEnum("WCFG", "use_instance_vocabulary", instance);
  options->use_mi_weights = mi == 1;
  options->build_phrase_vocabulary = vocab == 1;
  options->weights.use_instance_vocabulary = instance == 1;
  return RequireClean(cur, "WCFG");
}

Status DecodeVocabulary(const SectionView& sec,
                        std::unordered_set<std::string>* vocab) {
  wire::Cursor cur(sec.data, sec.size, "section 'VOCB'");
  uint32_t count;
  KM_RETURN_IF_ERROR(cur.U32(&count));
  for (uint32_t i = 0; i < count; ++i) {
    std::string phrase;
    KM_RETURN_IF_ERROR(cur.Str(&phrase));
    vocab->insert(std::move(phrase));
  }
  return RequireClean(cur, "VOCB");
}

Status DecodeValueIndex(const SectionView& sec,
                        std::vector<ValueIndexEntry>* index) {
  wire::Cursor cur(sec.data, sec.size, "section 'VIDX'");
  uint8_t present;
  KM_RETURN_IF_ERROR(cur.U8(&present));
  if (present > 1) return BadEnum("VIDX", "presence flag", present);
  if (present == 0) return RequireClean(cur, "VIDX");
  uint32_t entry_count;
  KM_RETURN_IF_ERROR(cur.U32(&entry_count));
  for (uint32_t i = 0; i < entry_count; ++i) {
    ValueIndexEntry entry;
    uint32_t text_count;
    KM_RETURN_IF_ERROR(cur.U32(&text_count));
    for (uint32_t t = 0; t < text_count; ++t) {
      std::string value;
      uint64_t count;
      KM_RETURN_IF_ERROR(cur.Str(&value));
      KM_RETURN_IF_ERROR(cur.U64(&count));
      entry.text_values.emplace(std::move(value), count);
    }
    uint32_t other_count;
    KM_RETURN_IF_ERROR(cur.U32(&other_count));
    for (uint32_t o = 0; o < other_count; ++o) {
      Value value;
      uint64_t count;
      KM_RETURN_IF_ERROR(wire::DecodeValue(cur, &value));
      KM_RETURN_IF_ERROR(cur.U64(&count));
      entry.other_values.emplace(std::move(value), count);
    }
    index->push_back(std::move(entry));
  }
  return RequireClean(cur, "VIDX");
}

StatusOr<std::shared_ptr<const PreparedState>> LoadImpl(
    const std::string& path, ScopedSpan& span) {
  KM_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));

  // A scripted callback may shrink the perceived size — the deterministic
  // stand-in for a torn write or short read. Everything downstream treats
  // `usable` as the end of the world, so truncation cannot SIGBUS.
  size_t usable = file.size();
  KM_FAILPOINT_VISIT("snapshot.load.short_read", nullptr, &usable);
  if (usable > file.size()) usable = file.size();

  SectionTable table;
  KM_RETURN_IF_ERROR(ValidateStructure(file.data(), usable, &table));
  span.Add("bytes", usable);

  DatabaseSchema schema;
  std::vector<DatabaseTerm> terms;
  std::vector<GraphEdge> edges;
  PreparedState::SummaryExpectation summary;
  PrepareOptions options;
  std::unordered_set<std::string> vocab;
  std::vector<ValueIndexEntry> value_index;

  KM_ASSIGN_OR_RETURN(SectionView schm, table.FindSection("SCHM"));
  KM_RETURN_IF_ERROR(DecodeSchema(schm, &schema));
  KM_ASSIGN_OR_RETURN(SectionView term, table.FindSection("TERM"));
  KM_RETURN_IF_ERROR(DecodeTerminology(term, &terms));
  KM_ASSIGN_OR_RETURN(SectionView grph, table.FindSection("GRPH"));
  KM_RETURN_IF_ERROR(DecodeGraph(grph, &edges));
  KM_ASSIGN_OR_RETURN(SectionView summ, table.FindSection("SUMM"));
  KM_RETURN_IF_ERROR(DecodeSummary(summ, &summary));
  KM_ASSIGN_OR_RETURN(SectionView wcfg, table.FindSection("WCFG"));
  KM_RETURN_IF_ERROR(DecodeConfig(wcfg, &options));
  KM_ASSIGN_OR_RETURN(SectionView vocb, table.FindSection("VOCB"));
  KM_RETURN_IF_ERROR(DecodeVocabulary(vocb, &vocab));
  KM_ASSIGN_OR_RETURN(SectionView vidx, table.FindSection("VIDX"));
  KM_RETURN_IF_ERROR(DecodeValueIndex(vidx, &value_index));

  return PreparedState::Assemble(std::move(schema), terms, edges, summary,
                                 std::move(options), std::move(vocab),
                                 std::move(value_index));
}

}  // namespace

StatusOr<std::shared_ptr<const PreparedState>> LoadSnapshot(
    const std::string& path, TraceNode* parent) {
  KM_SPAN(span, parent, "snapshot.load");
  LoadCounter("total").Increment();
  StatusOr<std::shared_ptr<const PreparedState>> result = LoadImpl(path, span);
  if (!result.ok()) CountFailure(result.status());
  return result;
}

}  // namespace km
