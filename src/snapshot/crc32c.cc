#include "snapshot/crc32c.h"

#include <array>

namespace km {

namespace {

// Reflected Castagnoli table, generated once at first use (constant-time
// thereafter; thread-safe via static-local initialization).
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& table = Crc32cTable();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace km
