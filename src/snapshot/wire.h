// Byte-level encode/decode helpers shared by the snapshot writer and
// loader. Internal to src/snapshot/ — not part of the public API.
//
// All integers are little-endian, written byte by byte (no struct punning,
// no host-endianness leakage). Doubles travel as their IEEE-754 bit
// pattern, so round trips are bit-exact. Strings are u32 length + raw
// bytes. The reader is bounds-checked on every primitive: running off the
// end of a section yields a typed error, never a wild read.

#ifndef KM_SNAPSHOT_WIRE_H_
#define KM_SNAPSHOT_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/status.h"

namespace km::wire {

/// Append-only little-endian byte buffer.
class Buf {
 public:
  void U8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    bytes_.append(s);
  }
  void Raw(const void* data, size_t n) {
    bytes_.append(static_cast<const char*>(data), n);
  }

  const std::string& bytes() const { return bytes_; }
  size_t size() const { return bytes_.size(); }

 private:
  std::string bytes_;
};

/// Bounds-checked little-endian reader over one section payload. Every
/// overrun returns the error built by the owner-supplied context string —
/// the caller decides whether that is truncation (raw file structure) or
/// version skew (payload that passed its CRC but does not parse).
class Cursor {
 public:
  Cursor(const void* data, size_t size, std::string what)
      : p_(static_cast<const uint8_t*>(data)), n_(size), what_(std::move(what)) {}

  Status U8(uint8_t* out) {
    if (off_ + 1 > n_) return Overrun();
    *out = p_[off_++];
    return Status::OK();
  }
  Status U32(uint32_t* out) {
    if (off_ + 4 > n_) return Overrun();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p_[off_ + i]) << (8 * i);
    off_ += 4;
    *out = v;
    return Status::OK();
  }
  Status U64(uint64_t* out) {
    if (off_ + 8 > n_) return Overrun();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p_[off_ + i]) << (8 * i);
    off_ += 8;
    *out = v;
    return Status::OK();
  }
  Status I32(int32_t* out) {
    uint32_t v;
    KM_RETURN_IF_ERROR(U32(&v));
    *out = static_cast<int32_t>(v);
    return Status::OK();
  }
  Status F64(double* out) {
    uint64_t bits;
    KM_RETURN_IF_ERROR(U64(&bits));
    static_assert(sizeof(bits) == sizeof(*out));
    std::memcpy(out, &bits, sizeof(bits));
    return Status::OK();
  }
  Status Str(std::string* out) {
    uint32_t len;
    KM_RETURN_IF_ERROR(U32(&len));
    if (off_ + len > n_ || off_ + len < off_) return Overrun();
    out->assign(reinterpret_cast<const char*>(p_ + off_), len);
    off_ += len;
    return Status::OK();
  }

  bool AtEnd() const { return off_ == n_; }
  size_t remaining() const { return n_ - off_; }

 private:
  Status Overrun() const {
    return Status::SnapshotVersionSkew(what_ + ": payload ends mid-record");
  }

  const uint8_t* p_;
  size_t n_;
  size_t off_ = 0;
  std::string what_;
};

}  // namespace km::wire

#endif  // KM_SNAPSHOT_WIRE_H_
