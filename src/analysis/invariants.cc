#include "analysis/invariants.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

namespace km {

namespace {

/// Tolerance for comparing recomputed sums of weights against stored totals.
bool NearlyEqual(double a, double b) {
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-6 * scale;
}

Status Violation(const std::string& what) { return Status::Internal(what); }

}  // namespace

Status ValidateWeightMatrix(const Matrix& weights, size_t num_keywords,
                            size_t num_terms) {
  if (weights.rows() != num_keywords || weights.cols() != num_terms) {
    return Violation("weight matrix shape " + std::to_string(weights.rows()) +
                     "x" + std::to_string(weights.cols()) +
                     " does not match keywords x terminology " +
                     std::to_string(num_keywords) + "x" +
                     std::to_string(num_terms));
  }
  for (size_t r = 0; r < weights.rows(); ++r) {
    for (size_t c = 0; c < weights.cols(); ++c) {
      double v = weights.At(r, c);
      if (!std::isfinite(v)) {
        return Violation("weight matrix entry (" + std::to_string(r) + "," +
                         std::to_string(c) + ") is not finite");
      }
      if (v < 0) {
        return Violation("weight matrix entry (" + std::to_string(r) + "," +
                         std::to_string(c) + ") is negative: " +
                         std::to_string(v));
      }
    }
  }
  return Status::OK();
}

Status ValidateAssignment(const Assignment& assignment, const Matrix& weights) {
  if (assignment.col_for_row.size() != weights.rows()) {
    return Violation("assignment has " +
                     std::to_string(assignment.col_for_row.size()) +
                     " rows but the weight matrix has " +
                     std::to_string(weights.rows()));
  }
  std::unordered_set<int> used_cols;
  double total = 0.0;
  for (size_t r = 0; r < assignment.col_for_row.size(); ++r) {
    int col = assignment.col_for_row[r];
    if (col < 0) continue;  // unassigned row (all columns forbidden)
    if (static_cast<size_t>(col) >= weights.cols()) {
      return Violation("assignment row " + std::to_string(r) +
                       " selects out-of-range column " + std::to_string(col));
    }
    if (!used_cols.insert(col).second) {
      return Violation("assignment is not injective: column " +
                       std::to_string(col) + " selected by two rows");
    }
    double w = weights.At(r, static_cast<size_t>(col));
    if (w <= kForbidden) {
      return Violation("assignment row " + std::to_string(r) +
                       " selects forbidden column " + std::to_string(col));
    }
    total += w;
  }
  if (!NearlyEqual(total, assignment.total_weight)) {
    return Violation("assignment total_weight " +
                     std::to_string(assignment.total_weight) +
                     " does not match recomputed sum " + std::to_string(total));
  }
  return Status::OK();
}

Status ValidateConfiguration(const Configuration& config, size_t num_keywords,
                             const Terminology& terminology) {
  if (config.term_for_keyword.size() != num_keywords) {
    return Violation("configuration maps " +
                     std::to_string(config.term_for_keyword.size()) +
                     " keywords but the query has " +
                     std::to_string(num_keywords));
  }
  std::unordered_set<size_t> used_terms;
  for (size_t i = 0; i < config.term_for_keyword.size(); ++i) {
    size_t t = config.term_for_keyword[i];
    if (t >= terminology.size()) {
      return Violation("configuration keyword " + std::to_string(i) +
                       " maps to out-of-range term " + std::to_string(t));
    }
    if (!used_terms.insert(t).second) {
      return Violation("configuration is not injective: term " +
                       terminology.term(t).ToString() + " used twice");
    }
  }
  return Status::OK();
}

Status ValidateInterpretation(const Interpretation& interpretation,
                              const SchemaGraph& graph) {
  if (interpretation.terminals.empty()) {
    return Violation("interpretation has no terminals");
  }
  std::unordered_set<size_t> terminal_set;
  for (size_t t : interpretation.terminals) {
    if (t >= graph.node_count()) {
      return Violation("interpretation terminal " + std::to_string(t) +
                       " is out of range");
    }
    if (!terminal_set.insert(t).second) {
      return Violation("interpretation terminal " + std::to_string(t) +
                       " is duplicated");
    }
  }

  // The node set must be exactly terminals ∪ edge endpoints.
  std::unordered_set<size_t> expected_nodes(terminal_set);
  std::unordered_set<size_t> edge_set;
  double cost = 0.0;
  for (size_t e : interpretation.edges) {
    if (e >= graph.edge_count()) {
      return Violation("interpretation edge " + std::to_string(e) +
                       " is out of range");
    }
    if (!edge_set.insert(e).second) {
      return Violation("interpretation edge " + std::to_string(e) +
                       " is duplicated");
    }
    const GraphEdge& edge = graph.edges()[e];
    expected_nodes.insert(edge.from);
    expected_nodes.insert(edge.to);
    cost += edge.weight;
  }
  std::unordered_set<size_t> node_set(interpretation.nodes.begin(),
                                      interpretation.nodes.end());
  if (node_set.size() != interpretation.nodes.size()) {
    return Violation("interpretation node list contains duplicates");
  }
  if (node_set != expected_nodes) {
    return Violation(
        "interpretation node list does not equal terminals plus edge "
        "endpoints");
  }

  // Tree shape: |E| = |V| − 1, and every node reachable through tree edges.
  if (interpretation.edges.size() + 1 != node_set.size()) {
    return Violation("interpretation is not a tree: " +
                     std::to_string(interpretation.edges.size()) +
                     " edges over " + std::to_string(node_set.size()) +
                     " nodes");
  }
  std::unordered_set<size_t> visited;
  std::vector<size_t> stack = {interpretation.terminals[0]};
  visited.insert(interpretation.terminals[0]);
  while (!stack.empty()) {
    size_t v = stack.back();
    stack.pop_back();
    for (size_t e : graph.EdgesOf(v)) {
      if (edge_set.count(e) == 0) continue;
      size_t u = graph.OtherEnd(e, v);
      if (visited.insert(u).second) stack.push_back(u);
    }
  }
  if (visited.size() != node_set.size()) {
    return Violation("interpretation is disconnected: only " +
                     std::to_string(visited.size()) + " of " +
                     std::to_string(node_set.size()) + " nodes reachable");
  }

  if (!std::isfinite(interpretation.cost) ||
      !NearlyEqual(cost, interpretation.cost)) {
    return Violation("interpretation cost " +
                     std::to_string(interpretation.cost) +
                     " does not match recomputed edge-weight sum " +
                     std::to_string(cost));
  }
  return Status::OK();
}

Status ValidateSchemaGraph(const SchemaGraph& graph,
                           const DatabaseSchema& schema) {
  const Terminology& terminology = graph.terminology();
  if (graph.node_count() != terminology.size()) {
    return Violation("schema graph has " + std::to_string(graph.node_count()) +
                     " nodes but the terminology has " +
                     std::to_string(terminology.size()) + " terms");
  }

  // No dangling terms: every term must resolve against the catalog.
  for (size_t i = 0; i < terminology.size(); ++i) {
    const DatabaseTerm& term = terminology.term(i);
    const RelationSchema* rel = schema.FindRelation(term.relation);
    if (rel == nullptr) {
      return Violation("term " + term.ToString() +
                       " names unknown relation " + term.relation);
    }
    if (term.kind != TermKind::kRelation &&
        !rel->AttributeIndex(term.attribute)) {
      return Violation("term " + term.ToString() +
                       " names unknown attribute " + term.relation + "." +
                       term.attribute);
    }
  }

  const auto& fks = schema.foreign_keys();
  for (size_t e = 0; e < graph.edge_count(); ++e) {
    const GraphEdge& edge = graph.edges()[e];
    const std::string id = "edge " + std::to_string(e);
    if (edge.from >= graph.node_count() || edge.to >= graph.node_count()) {
      return Violation(id + " has an out-of-range endpoint");
    }
    if (edge.from == edge.to) {
      return Violation(id + " is a self-loop on node " +
                       std::to_string(edge.from));
    }
    if (!std::isfinite(edge.weight) || edge.weight < 0) {
      return Violation(id + " has invalid weight " +
                       std::to_string(edge.weight));
    }
    const DatabaseTerm& a = terminology.term(edge.from);
    const DatabaseTerm& b = terminology.term(edge.to);
    switch (edge.kind) {
      case EdgeKind::kRelationAttribute: {
        const DatabaseTerm& rel = a.kind == TermKind::kRelation ? a : b;
        const DatabaseTerm& attr = a.kind == TermKind::kRelation ? b : a;
        if (rel.kind != TermKind::kRelation ||
            attr.kind != TermKind::kAttribute ||
            rel.relation != attr.relation) {
          return Violation(id + " (" + a.ToString() + " — " + b.ToString() +
                           ") is not a relation—attribute pair");
        }
        break;
      }
      case EdgeKind::kAttributeDomain: {
        const DatabaseTerm& attr = a.kind == TermKind::kAttribute ? a : b;
        const DatabaseTerm& dom = a.kind == TermKind::kAttribute ? b : a;
        if (attr.kind != TermKind::kAttribute ||
            dom.kind != TermKind::kDomain || attr.relation != dom.relation ||
            attr.attribute != dom.attribute) {
          return Violation(id + " (" + a.ToString() + " — " + b.ToString() +
                           ") is not an attribute—domain pair");
        }
        break;
      }
      case EdgeKind::kForeignKey: {
        if (a.kind != TermKind::kDomain || b.kind != TermKind::kDomain) {
          return Violation(id + " joins non-domain terms as a foreign key");
        }
        if (edge.fk_index < 0 ||
            static_cast<size_t>(edge.fk_index) >= fks.size()) {
          return Violation(id + " has out-of-range fk_index " +
                           std::to_string(edge.fk_index));
        }
        const ForeignKey& fk = fks[static_cast<size_t>(edge.fk_index)];
        auto d_from =
            terminology.DomainTerm(fk.from_relation, fk.from_attribute);
        auto d_to = terminology.DomainTerm(fk.to_relation, fk.to_attribute);
        if (!d_from || !d_to) {
          return Violation(id + ": foreign key endpoints do not resolve to "
                           "domain terms");
        }
        bool matches = (*d_from == edge.from && *d_to == edge.to) ||
                       (*d_from == edge.to && *d_to == edge.from);
        if (!matches) {
          return Violation(id + " endpoints do not match foreign key " +
                           fk.from_relation + "." + fk.from_attribute + " → " +
                           fk.to_relation + "." + fk.to_attribute);
        }
        break;
      }
    }
  }

  // Adjacency consistency: every adjacency entry is an incident edge, and
  // each edge appears exactly twice across all adjacency lists.
  size_t adjacency_entries = 0;
  for (size_t n = 0; n < graph.node_count(); ++n) {
    for (size_t e : graph.EdgesOf(n)) {
      if (e >= graph.edge_count()) {
        return Violation("adjacency of node " + std::to_string(n) +
                         " lists out-of-range edge " + std::to_string(e));
      }
      const GraphEdge& edge = graph.edges()[e];
      if (edge.from != n && edge.to != n) {
        return Violation("adjacency of node " + std::to_string(n) +
                         " lists non-incident edge " + std::to_string(e));
      }
      ++adjacency_entries;
    }
  }
  if (adjacency_entries != 2 * graph.edge_count()) {
    return Violation("adjacency lists hold " +
                     std::to_string(adjacency_entries) +
                     " entries; expected " +
                     std::to_string(2 * graph.edge_count()));
  }
  return Status::OK();
}

}  // namespace km
