// Whole-structure invariant validators for the pipeline's data structures.
//
// Each validator re-derives an invariant the pipeline relies on and returns
// OK or a kInternal Status naming the first violation found. They are
// deliberately independent of the code that *constructs* the structures, so
// a bug in a builder cannot hide the same bug here.
//
// Intended call sites:
//   * tests (tests/analysis_test.cc feeds conforming and violating inputs),
//   * debug builds of the pipeline, via KM_DCHECK_OK(Validate...(x)) — free
//     in release builds, full validation under -DCMAKE_BUILD_TYPE=Debug,
//   * ad-hoc debugging of corrupted intermediate state.

#ifndef KM_ANALYSIS_INVARIANTS_H_
#define KM_ANALYSIS_INVARIANTS_H_

#include "common/matrix.h"
#include "common/status.h"
#include "graph/interpretation.h"
#include "graph/schema_graph.h"
#include "matching/munkres.h"
#include "metadata/configuration.h"
#include "metadata/term.h"
#include "relational/schema.h"

namespace km {

/// Checks that a keyword×term weight matrix is structurally sound:
/// shape is `num_keywords` × `num_terms`, and every entry is finite and
/// non-negative (intrinsic weights and emission probabilities live in
/// [0, 1]; negative or NaN/Inf entries poison the assignment step).
Status ValidateWeightMatrix(const Matrix& weights, size_t num_keywords,
                            size_t num_terms);

/// Checks Munkres/Murty output against the matrix it was computed from:
/// one column per row (or -1), every assigned column in range, no two rows
/// sharing a column (injectivity), no forbidden pair selected, and
/// total_weight equal to the sum of the selected weights.
Status ValidateAssignment(const Assignment& assignment, const Matrix& weights);

/// Checks that a configuration is a total injective mapping of the
/// `num_keywords` query keywords into `terminology`: one term per keyword,
/// all indices in range, no duplicate term use.
Status ValidateConfiguration(const Configuration& config, size_t num_keywords,
                             const Terminology& terminology);

/// Checks that an interpretation is a connected join tree over `graph`:
/// non-empty distinct terminals contained in the node set, all edge/node
/// indices in range, node set equal to the union of terminals and edge
/// endpoints, |E| = |V| − 1 with all nodes reachable (tree + connected),
/// and cost equal to the sum of the tree's edge weights.
Status ValidateInterpretation(const Interpretation& interpretation,
                              const SchemaGraph& graph);

/// Checks a schema graph against the terminology and catalog it was built
/// from: node count matches the terminology, every edge joins two distinct
/// in-range nodes with a finite non-negative weight and endpoint kinds
/// matching its EdgeKind, FK edges carry an fk_index resolving to a catalog
/// foreign key whose endpoint domains are the edge's endpoints, adjacency
/// lists are consistent with the edge list, and every attribute/domain term
/// resolves to a live attribute of the catalog (no dangling attributes).
Status ValidateSchemaGraph(const SchemaGraph& graph,
                           const DatabaseSchema& schema);

}  // namespace km

#endif  // KM_ANALYSIS_INVARIANTS_H_
