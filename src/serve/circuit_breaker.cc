#include "serve/circuit_breaker.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/retry.h"
#include "common/trace.h"

namespace km {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(std::string name, CircuitBreakerOptions options,
                               std::function<double()> now_ms)
    : name_(std::move(name)), options_(options), now_ms_(std::move(now_ms)) {
  MetricsRegistry::Default()
      .GaugeRef("km.breaker." + name_ + ".state")
      .Set(static_cast<int64_t>(BreakerState::kClosed));
}

double CircuitBreaker::NowMs() const {
  if (now_ms_) return now_ms_();
  return static_cast<double>(MonotonicNowNs()) / 1e6;
}

bool CircuitBreaker::IsBackendFailure(const Status& result) {
  return result.code() == StatusCode::kInternal ||
         result.code() == StatusCode::kUnavailable;
}

void CircuitBreaker::TransitionLocked(BreakerState next, double now) {
  if (state_ == next) return;
  // Every transition starts a new epoch: outcomes of calls admitted under
  // the previous state become stale for RecordOutcome().
  ++epoch_;
  if (next == BreakerState::kOpen) {
    opened_at_ms_ = now;
    ++trips_;
    MetricsRegistry::Default()
        .CounterRef("km.breaker." + name_ + ".trips")
        .Increment();
  }
  state_ = next;
  consecutive_failures_ = 0;
  window_.clear();
  window_failures_ = 0;
  half_open_inflight_ = 0;
  half_open_successes_ = 0;
  auto& registry = MetricsRegistry::Default();
  registry.GaugeRef("km.breaker." + name_ + ".state")
      .Set(static_cast<int64_t>(next));
  registry
      .CounterRef("km.breaker." + name_ + ".transitions." +
                  BreakerStateName(next))
      .Increment();
}

Status CircuitBreaker::Admit() {
  MutexLock lock(mu_);
  uint64_t ignored_epoch = 0;
  return AdmitLocked(NowMs(), &ignored_epoch);
}

StatusOr<ExecutionGate::Ticket> CircuitBreaker::AdmitTicket() {
  MutexLock lock(mu_);
  Ticket ticket;
  const Status admit = AdmitLocked(NowMs(), &ticket.epoch);
  if (!admit.ok()) return admit;
  return ticket;
}

Status CircuitBreaker::AdmitLocked(double now, uint64_t* ticket_epoch) {
  if (state_ == BreakerState::kOpen) {
    const double waited = now - opened_at_ms_;
    if (waited < options_.open_cooldown_ms) {
      ++rejections_;
      MetricsRegistry::Default()
          .CounterRef("km.breaker." + name_ + ".rejections")
          .Increment();
      return UnavailableStatus("circuit '" + name_ + "' open",
                               options_.open_cooldown_ms - waited);
    }
    TransitionLocked(BreakerState::kHalfOpen, now);
  }
  if (state_ == BreakerState::kHalfOpen) {
    if (half_open_inflight_ >= options_.half_open_probes) {
      ++rejections_;
      MetricsRegistry::Default()
          .CounterRef("km.breaker." + name_ + ".rejections")
          .Increment();
      return UnavailableStatus("circuit '" + name_ + "' half-open, probes busy",
                               options_.open_cooldown_ms);
    }
    ++half_open_inflight_;
  }
  // The ticket is stamped *after* any OPEN → HALF-OPEN transition above, so
  // a probe's ticket carries the half-open epoch it actually runs under.
  *ticket_epoch = epoch_;
  return Status::OK();
}

void CircuitBreaker::Record(const Status& result) {
  MutexLock lock(mu_);
  RecordLocked(result, NowMs());
}

void CircuitBreaker::RecordOutcome(const Ticket& ticket, const Status& result) {
  MutexLock lock(mu_);
  if (ticket.epoch != epoch_) {
    // The breaker changed state while this call ran; its outcome belongs to
    // a dead epoch. Counting it here would corrupt the current state's
    // accounting — e.g. a pre-trip success closing the circuit out of
    // HALF-OPEN, or freeing a probe slot it never held.
    ++stale_outcomes_;
    MetricsRegistry::Default()
        .CounterRef("km.breaker." + name_ + ".stale_outcomes")
        .Increment();
    return;
  }
  RecordLocked(result, NowMs());
}

void CircuitBreaker::RecordLocked(const Status& result, double now) {
  const bool failure = IsBackendFailure(result);
  switch (state_) {
    case BreakerState::kClosed: {
      consecutive_failures_ = failure ? consecutive_failures_ + 1 : 0;
      window_.push_back(failure);
      if (failure) ++window_failures_;
      while (static_cast<int>(window_.size()) > options_.window) {
        if (window_.front()) --window_failures_;
        window_.pop_front();
      }
      const bool ratio_trip =
          static_cast<int>(window_.size()) >= options_.window &&
          static_cast<double>(window_failures_) >
              options_.failure_ratio * static_cast<double>(window_.size());
      if (consecutive_failures_ >= options_.consecutive_failures || ratio_trip) {
        TransitionLocked(BreakerState::kOpen, now);
      }
      break;
    }
    case BreakerState::kHalfOpen: {
      if (half_open_inflight_ > 0) --half_open_inflight_;
      if (failure) {
        TransitionLocked(BreakerState::kOpen, now);
        break;
      }
      if (++half_open_successes_ >= options_.close_after_successes) {
        TransitionLocked(BreakerState::kClosed, now);
      }
      break;
    }
    case BreakerState::kOpen:
      // Stale outcome of a call admitted before the trip; the cooldown
      // already charges for this period, nothing to account.
      break;
  }
}

BreakerState CircuitBreaker::state() const {
  MutexLock lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::trips() const {
  MutexLock lock(mu_);
  return trips_;
}

uint64_t CircuitBreaker::rejections() const {
  MutexLock lock(mu_);
  return rejections_;
}

uint64_t CircuitBreaker::stale_outcomes() const {
  MutexLock lock(mu_);
  return stale_outcomes_;
}

}  // namespace km
