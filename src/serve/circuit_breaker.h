// Circuit breaker for the SQL execution backend.
//
// The metadata approach is designed for querying sources you do not own —
// deep-web backends answering the generated SQL remotely. When such a
// backend starts failing, continuing to send it result-probing queries
// (penalize_empty_results, workload evaluation) both wastes the query's
// budget and prolongs the backend's overload. The breaker is the standard
// three-state machine:
//
//            failures reach threshold              cooldown elapses
//   CLOSED ────────────────────────────► OPEN ────────────────────► HALF-OPEN
//     ▲                                    ▲                            │
//     │   probe successes reach target     │      any probe fails       │
//     └────────────────────────────────────┴────────────────────────────┘
//
// CLOSED passes everything through and tracks failures two ways: a
// consecutive-failure count and a failure ratio over a sliding sample
// window (either trips). OPEN fails fast: Admit() returns kUnavailable
// (with a retry-after hint of the remaining cooldown) and the backend is
// never called. HALF-OPEN admits a bounded number of concurrent probes;
// enough successes close the circuit, any failure re-opens it.
//
// The breaker implements ExecutionGate (engine/executor.h), so handing it
// to EngineOptions::execution_gate protects every executor call the engine
// makes. Time is injectable for deterministic tests; state, transitions and
// fail-fast rejections are published through the metrics registry
// ("km.breaker.<name>.*").

#ifndef KM_SERVE_CIRCUIT_BREAKER_H_
#define KM_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/executor.h"

namespace km {

/// Trip/recovery tuning. Defaults suit a backend answering in milliseconds.
struct CircuitBreakerOptions {
  /// Consecutive failures that trip CLOSED → OPEN.
  int consecutive_failures = 5;
  /// Alternative ratio trip: over the last `window` outcomes (once at least
  /// `window` samples exist), a failure fraction > `failure_ratio` trips.
  double failure_ratio = 0.5;
  int window = 20;
  /// How long OPEN fails fast before probing (HALF-OPEN) is allowed.
  double open_cooldown_ms = 1000.0;
  /// Concurrent probes admitted in HALF-OPEN.
  int half_open_probes = 1;
  /// Probe successes needed to close the circuit again.
  int close_after_successes = 2;
};

enum class BreakerState : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

/// Stable lower-case state name ("closed", "open", "half_open").
const char* BreakerStateName(BreakerState state);

/// Thread-safe three-state circuit breaker; see the header comment for the
/// state machine. Which Status codes count as backend failures is fixed:
/// kInternal and kUnavailable (the fault classes a dying backend produces);
/// client errors (invalid SQL, missing relations) and the query's own
/// budget exhaustion do not trip the breaker.
class CircuitBreaker : public ExecutionGate {
 public:
  /// `name` prefixes the published metrics ("km.breaker.<name>.*").
  /// `now_ms` (optional) replaces the monotonic clock — tests drive the
  /// cooldown deterministically through a manual time source.
  explicit CircuitBreaker(std::string name, CircuitBreakerOptions options = {},
                          std::function<double()> now_ms = {});

  /// ExecutionGate: OK in CLOSED; OK for up to `half_open_probes` callers
  /// in HALF-OPEN; kUnavailable (retry-after = remaining cooldown) in OPEN.
  Status Admit() override KM_EXCLUDES(mu_);

  /// ExecutionGate: outcome of one admitted call. Legacy (unticketed)
  /// reporting: the outcome is charged to the breaker's *current* state,
  /// so a slow call completing after a state change is mis-attributed.
  /// Prefer the AdmitTicket()/RecordOutcome() pair.
  void Record(const Status& result) override KM_EXCLUDES(mu_);

  /// Ticketed admission: the returned ticket carries the epoch of the
  /// admitting state. Every state transition starts a new epoch.
  StatusOr<Ticket> AdmitTicket() override KM_EXCLUDES(mu_);

  /// Outcome matched to its admission epoch. Outcomes whose epoch is no
  /// longer current are counted as stale and otherwise ignored: a success
  /// from before the trip can neither close the circuit nor free a
  /// half-open probe slot it never occupied.
  void RecordOutcome(const Ticket& ticket, const Status& result) override
      KM_EXCLUDES(mu_);

  BreakerState state() const KM_EXCLUDES(mu_);

  /// Counts since construction (monotone, also published as metrics).
  uint64_t trips() const KM_EXCLUDES(mu_);       ///< transitions to OPEN
  uint64_t rejections() const KM_EXCLUDES(mu_);  ///< fail-fast rejections
  uint64_t stale_outcomes() const KM_EXCLUDES(mu_);  ///< dropped stale reports

  /// True when `result` counts as a backend failure for trip accounting.
  static bool IsBackendFailure(const Status& result);

 private:
  Status AdmitLocked(double now, uint64_t* ticket_epoch) KM_REQUIRES(mu_);
  void RecordLocked(const Status& result, double now) KM_REQUIRES(mu_);
  void TransitionLocked(BreakerState next, double now) KM_REQUIRES(mu_);
  double NowMs() const;

  const std::string name_;
  const CircuitBreakerOptions options_;
  const std::function<double()> now_ms_;

  mutable Mutex mu_;
  BreakerState state_ KM_GUARDED_BY(mu_) = BreakerState::kClosed;
  /// Bumped by every transition; tickets from older epochs are stale.
  uint64_t epoch_ KM_GUARDED_BY(mu_) = 0;
  int consecutive_failures_ KM_GUARDED_BY(mu_) = 0;
  /// true = failure, newest at the back
  std::deque<bool> window_ KM_GUARDED_BY(mu_);
  int window_failures_ KM_GUARDED_BY(mu_) = 0;
  double opened_at_ms_ KM_GUARDED_BY(mu_) = 0.0;
  int half_open_inflight_ KM_GUARDED_BY(mu_) = 0;
  int half_open_successes_ KM_GUARDED_BY(mu_) = 0;
  uint64_t trips_ KM_GUARDED_BY(mu_) = 0;
  uint64_t rejections_ KM_GUARDED_BY(mu_) = 0;
  uint64_t stale_outcomes_ KM_GUARDED_BY(mu_) = 0;
};

}  // namespace km

#endif  // KM_SERVE_CIRCUIT_BREAKER_H_
