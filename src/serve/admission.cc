#include "serve/admission.h"

#include <algorithm>

#include "common/retry.h"
#include "common/trace.h"

namespace km {

AdmissionQueue::AdmissionQueue(AdmissionOptions options)
    : options_(options) {}

Status AdmissionQueue::Offer(Item item, double estimated_wait_ms) {
  MutexLock lock(mu_);
  if (shutdown_) {
    ++shed_shutdown_;
    return UnavailableStatus("server shutting down", 0.0);
  }
  const double retry_after =
      std::max(estimated_wait_ms, options_.min_retry_after_ms);
  if (items_.size() >= options_.max_queue) {
    ++shed_full_;
    return OverloadedStatus("admission queue full", retry_after);
  }
  if (item.remaining_deadline_ms > 0 &&
      estimated_wait_ms > item.remaining_deadline_ms) {
    // The request would expire before a worker picks it up; shedding now
    // is strictly cheaper than queueing it to time out.
    ++shed_deadline_;
    return OverloadedStatus("predicted queue wait exceeds deadline",
                            retry_after);
  }
  item.enqueued_ns = MonotonicNowNs();
  items_.push_back(std::move(item));
  ++admitted_;
  max_depth_ = std::max(max_depth_, items_.size());
  cv_.NotifyOne();
  return Status::OK();
}

std::optional<AdmissionQueue::Item> AdmissionQueue::Take() {
  MutexLock lock(mu_);
  while (!shutdown_ && items_.empty()) cv_.Wait(mu_);
  if (items_.empty()) return std::nullopt;  // shut down and drained
  Item item = std::move(items_.front());
  items_.pop_front();
  return item;
}

void AdmissionQueue::Shutdown() {
  MutexLock lock(mu_);
  shutdown_ = true;
  cv_.NotifyAll();
}

size_t AdmissionQueue::depth() const {
  MutexLock lock(mu_);
  return items_.size();
}

size_t AdmissionQueue::max_depth_seen() const {
  MutexLock lock(mu_);
  return max_depth_;
}

uint64_t AdmissionQueue::admitted() const {
  MutexLock lock(mu_);
  return admitted_;
}

uint64_t AdmissionQueue::shed_full() const {
  MutexLock lock(mu_);
  return shed_full_;
}

uint64_t AdmissionQueue::shed_deadline() const {
  MutexLock lock(mu_);
  return shed_deadline_;
}

uint64_t AdmissionQueue::shed_shutdown() const {
  MutexLock lock(mu_);
  return shed_shutdown_;
}

bool AdmissionQueue::shutdown() const {
  MutexLock lock(mu_);
  return shutdown_;
}

AimdLimiter::AimdLimiter(AimdOptions options, std::function<double()> now_ms)
    : options_(options),
      now_ms_(std::move(now_ms)),
      limit_(options.initial_limit) {}

double AimdLimiter::NowMs() const {
  if (now_ms_) return now_ms_();
  return static_cast<double>(MonotonicNowNs()) / 1e6;
}

void AimdLimiter::Acquire() {
  MutexLock lock(mu_);
  while (static_cast<double>(inflight_) >= limit_) cv_.Wait(mu_);
  ++inflight_;
}

bool AimdLimiter::TryAcquire() {
  MutexLock lock(mu_);
  if (static_cast<double>(inflight_) >= limit_) return false;
  ++inflight_;
  return true;
}

void AimdLimiter::Release(double latency_ms) {
  MutexLock lock(mu_);
  if (inflight_ > 0) --inflight_;
  const bool overloaded =
      options_.latency_target_ms > 0 && latency_ms > options_.latency_target_ms;
  if (overloaded) {
    DecreaseLocked(NowMs());
  } else {
    limit_ = std::min(options_.max_limit, limit_ + options_.increase);
  }
  // Waiters wake on the freed slot and on any limit increase.
  cv_.NotifyAll();
}

void AimdLimiter::ReleaseWithoutSample() {
  MutexLock lock(mu_);
  if (inflight_ > 0) --inflight_;
  cv_.NotifyAll();
}

void AimdLimiter::OnOverload() {
  MutexLock lock(mu_);
  DecreaseLocked(NowMs());
}

void AimdLimiter::DecreaseLocked(double now) {
  if (now - last_decrease_ms_ < options_.decrease_cooldown_ms) return;
  last_decrease_ms_ = now;
  limit_ = std::max(options_.min_limit, limit_ * options_.decrease_factor);
  ++decreases_;
}

double AimdLimiter::limit() const {
  MutexLock lock(mu_);
  return limit_;
}

size_t AimdLimiter::inflight() const {
  MutexLock lock(mu_);
  return inflight_;
}

uint64_t AimdLimiter::decreases() const {
  MutexLock lock(mu_);
  return decreases_;
}

}  // namespace km
