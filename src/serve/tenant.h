// TenantRegistry: the multi-tenant layer over EngineServer.
//
// One process serves many databases at once — the metadata approach keeps
// prepared state small and immutable, so a tenant is just (database-id →
// shared_ptr<const KeymanticEngine>) plus serving policy. Each tenant gets
// its *own* EngineServer:
//
//   * admission quota — the tenant's bounded AdmissionQueue + AIMD limiter
//     shed that tenant's excess load without touching anyone else's queue;
//   * cache partition — the tenant's engine owns its keyword-row and
//     Steiner LRU caches, so one tenant's churn cannot evict another's hot
//     entries;
//   * RCU hot swap — ReloadTenantSnapshot delegates to the tenant's
//     EngineServer::ReloadSnapshot, flipping that tenant's prepared state
//     under live traffic while every other tenant keeps serving.
//
// The registry itself is a thin synchronized map: Submit copies the
// tenant's server handle under the lock and submits outside it, so a slow
// engine never serializes cross-tenant traffic. The network front end
// (net/server.h) binds each connection to a tenant via the HELO frame and
// routes QURY frames through Submit().

#ifndef KM_SERVE_TENANT_H_
#define KM_SERVE_TENANT_H_

#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/keymantic.h"
#include "serve/engine_server.h"

namespace km {

/// Per-tenant serving policy. The EngineServerOptions inside carry the
/// admission quota (queue bound, AIMD tuning, worker count) for this
/// tenant alone.
struct TenantOptions {
  EngineServerOptions server;
};

/// Thread-safe database-id → serving-engine map. Tenants can be added,
/// removed, and hot-reloaded while other tenants serve traffic.
/// Shutdown() (or destruction) stops every tenant's server gracefully.
class TenantRegistry {
 public:
  TenantRegistry() = default;
  ~TenantRegistry();

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Registers `id` serving `engine`. Fails with kInvalidArgument for a
  /// malformed id (empty, > 128 bytes, or containing control characters),
  /// kAlreadyExists for a duplicate, kFailedPrecondition after Shutdown.
  Status AddTenant(const std::string& id,
                   std::shared_ptr<const KeymanticEngine> engine,
                   const TenantOptions& options = {}) KM_EXCLUDES(mu_);

  /// Registers `id` with prepared state loaded from the snapshot at
  /// `snapshot_path` (PR 7 format). `db` is borrowed and must outlive the
  /// registry — the snapshot stores derived state, not the database.
  Status AddTenantFromSnapshot(const std::string& id, const Database& db,
                               const std::string& snapshot_path,
                               const EngineOptions& engine_options = {},
                               const TenantOptions& options = {})
      KM_EXCLUDES(mu_);

  /// Shuts the tenant's server down (draining admitted requests) and drops
  /// it from the map. kNotFound when absent.
  Status RemoveTenant(const std::string& id) KM_EXCLUDES(mu_);

  bool HasTenant(const std::string& id) const KM_EXCLUDES(mu_);

  /// Registered tenant ids, sorted.
  std::vector<std::string> TenantIds() const KM_EXCLUDES(mu_);

  /// The tenant's serving facade (nullptr when absent). The handle stays
  /// valid after RemoveTenant — shared_ptr semantics — but its server will
  /// have been shut down.
  std::shared_ptr<EngineServer> Server(const std::string& id) const
      KM_EXCLUDES(mu_);

  /// Routes one query to `id`'s EngineServer. Unknown tenants resolve the
  /// future immediately with kNotFound; everything else follows the
  /// tenant's own admission/shedding policy.
  std::future<StatusOr<AnswerResult>> Submit(const std::string& id,
                                             const std::string& query,
                                             size_t k, double deadline_ms = 0)
      KM_EXCLUDES(mu_);

  /// RCU hot swap of one tenant's prepared state (EngineServer's reload
  /// degradation ladder). Other tenants are untouched.
  Status ReloadTenantSnapshot(const std::string& id, const std::string& path,
                              bool require_swap = false,
                              ReloadReport* report = nullptr)
      KM_EXCLUDES(mu_);

  /// One consistent counters snapshot for the tenant.
  StatusOr<ServerStats> StatsFor(const std::string& id) const
      KM_EXCLUDES(mu_);

  /// Deadline-bounded drain of every tenant: waits up to `deadline_ms`
  /// total for all outstanding requests across tenants to finish. Returns
  /// true when everything drained in time. Tenants keep accepting new
  /// Submits — pair with the front end's NetServer::Drain (which stops the
  /// inflow) and follow with Shutdown().
  bool DrainFor(double deadline_ms) KM_EXCLUDES(mu_);

  /// Stops every tenant's server (graceful drain + join). Idempotent;
  /// later Add/Submit calls are rejected.
  void Shutdown() KM_EXCLUDES(mu_);

 private:
  static Status ValidateTenantId(const std::string& id);

  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<EngineServer>> tenants_
      KM_GUARDED_BY(mu_);
  bool shutdown_ KM_GUARDED_BY(mu_) = false;
};

}  // namespace km

#endif  // KM_SERVE_TENANT_H_
