// EngineServer: the overload-protected serving facade over KeymanticEngine.
//
// Callers Submit() keyword queries and get futures; a small worker pool
// drains a bounded admission queue (admission.h) and runs the engine under
// an AIMD concurrency limit. Every request gets a QueryContext at *submit*
// time, so time spent queued burns the same deadline the engine degrades
// against — an admitted request is bounded end-to-end, not just while
// executing.
//
// Overload behavior, in order of preference:
//   1. degrade — admitted requests under deadline pressure fall down the
//      engine's degradation ladder (partial but ranked answers);
//   2. shed — requests that would overflow the queue or expire while
//      queued are rejected up front with kOverloaded + a retry-after hint
//      (see common/retry.h for the client-side backoff that consumes it);
//   3. fail fast — when a CircuitBreaker (circuit_breaker.h) is installed
//      as the engine's ExecutionGate, a dead backend stops being probed.
//
// The server publishes an explicit overload state machine
// (healthy → throttling → shedding) through the metrics registry
// ("km.serve.*") so operators see pressure building before sheds start.

#ifndef KM_SERVE_ENGINE_SERVER_H_
#define KM_SERVE_ENGINE_SERVER_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/query_context.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/keymantic.h"
#include "serve/admission.h"

namespace km {

/// Pressure level of the server, ordered by increasing severity. Published
/// as the "km.serve.state" gauge (numeric value of the enum).
enum class OverloadState {
  kHealthy = 0,     ///< queue shallow, concurrency limit at/above initial
  kThrottling = 1,  ///< queue filling or AIMD limit depressed; no sheds yet
  kShedding = 2,    ///< at least one shed in the recent window
};

/// Stable lower-case state name ("healthy", "throttling", "shedding").
const char* OverloadStateName(OverloadState state);

/// Predicted queue wait for a new arrival: depth × EMA service time /
/// effective concurrency. Effective concurrency is what can actually drain
/// the queue — the AIMD limit capped by the worker count (a limit of 64
/// drains nothing faster when one worker serves the queue). Returns 0 while
/// uncalibrated (`ema_service_ms` ≤ 0): admit optimistically until the
/// first completion measures service time.
double PredictQueueWaitMs(size_t queue_depth, double ema_service_ms,
                          double aimd_limit, size_t workers);

struct EngineServerOptions {
  /// Worker threads draining the admission queue.
  size_t workers = 2;
  /// Bounds of the admission queue (depth cap, shed retry-after floor).
  AdmissionOptions admission;
  /// AIMD concurrency-limit tuning.
  AimdOptions aimd;
  /// Deadline applied to requests submitted without one; 0 = unlimited.
  double default_deadline_ms = 0;
  /// Per-query work budgets stamped into each request's QueryContext
  /// (deadline_ms is overridden per request; see Submit).
  QueryLimits limits;
  /// Sheds within this trailing window put the server in kShedding.
  double shed_window_ms = 1000.0;
  /// Retry-after hint attached to rejections while the server refuses
  /// traffic (bottom rung of the snapshot-reload degradation ladder).
  double refusal_retry_after_ms = 1000.0;
};

/// Where a ReloadSnapshot call landed on the degradation ladder.
enum class ReloadRung {
  kSwapped = 0,      ///< snapshot loaded, validated, and swapped in
  kKeptCurrent = 1,  ///< snapshot rejected; previous engine kept serving
  kRebuilt = 2,      ///< snapshot rejected; state rebuilt from the database
  kRefused = 3,      ///< nothing valid to serve; Submits rejected
};

/// Stable lower-case rung name ("swapped", "kept_current", ...).
const char* ReloadRungName(ReloadRung rung);

/// Machine-readable outcome of one ReloadSnapshot call.
struct ReloadReport {
  ReloadRung rung = ReloadRung::kSwapped;
  /// The typed error from LoadSnapshot / validation (OK when swapped).
  Status load_status = Status::OK();
  double elapsed_ms = 0;
};

/// Counters snapshot for tests and reporting (one consistent read).
struct ServerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;           ///< rejected at Submit (queue full / deadline / shutdown)
  uint64_t completed = 0;      ///< futures fulfilled by a worker
  uint64_t expired_in_queue = 0;  ///< admitted but dead before a worker started
  size_t queue_depth = 0;
  size_t max_queue_depth = 0;
  double aimd_limit = 0;
  OverloadState state = OverloadState::kHealthy;
};

/// Thread-safe serving facade. The engine must outlive the server.
/// Destruction shuts down gracefully (drains admitted requests).
class EngineServer {
 public:
  /// Legacy entry point: serve a borrowed engine. The engine must outlive
  /// the server; ReloadSnapshot still works (the borrowed engine simply
  /// stops being used after the first successful swap).
  EngineServer(const KeymanticEngine& engine, EngineServerOptions options = {});

  /// Owning entry point: the server shares the engine RCU-style. Workers
  /// pin the current engine per request, so a hot swap never yanks state
  /// out from under an in-flight query.
  EngineServer(std::shared_ptr<const KeymanticEngine> engine,
               EngineServerOptions options = {});

  ~EngineServer();

  EngineServer(const EngineServer&) = delete;
  EngineServer& operator=(const EngineServer&) = delete;

  /// Submits one keyword query for up to `k` answers. Returns immediately;
  /// the future resolves when a worker finishes the request (or right away
  /// when the request is shed — the shed Status, with its retry-after
  /// hint, is delivered through the same future).
  ///
  /// `deadline_ms` overrides options.default_deadline_ms for this request
  /// (0 = use the default). The deadline clock starts *now*: queue wait
  /// counts against it.
  std::future<StatusOr<AnswerResult>> Submit(const std::string& query, size_t k,
                                             double deadline_ms = 0)
      KM_EXCLUDES(mu_);

  /// Blocks until every admitted request has completed (queue empty and no
  /// worker mid-request). New Submits during a drain are still accepted.
  void Drain() KM_EXCLUDES(mu_);

  /// Deadline-bounded Drain: waits up to `deadline_ms` for outstanding
  /// requests to hit zero. Returns true when drained, false on timeout
  /// (requests still in flight) — the graceful-shutdown handshake the
  /// network front end uses before tearing tenants down.
  bool DrainFor(double deadline_ms) KM_EXCLUDES(mu_);

  /// Graceful shutdown: stops admission (further Submits are rejected with
  /// kUnavailable), waits out any in-flight ReloadSnapshot (which would
  /// otherwise take mu_ and write engine_ after destruction), drains
  /// already-admitted requests, joins the workers. Idempotent.
  void Shutdown() KM_EXCLUDES(mu_);

  /// Atomically replaces the serving engine with one assembled from the
  /// snapshot at `path`, under live traffic: in-flight requests finish on
  /// the engine they started with (each worker pins the engine via a
  /// shared_ptr copy — refcount release is the grace period), new requests
  /// see the swapped engine.
  ///
  /// Degradation ladder when the snapshot cannot be served:
  ///   1. `require_swap == false` (default): keep the current engine and
  ///      return the typed load/validation error — the safe choice when the
  ///      running state is known-good.
  ///   2. `require_swap == true` (the current state is suspect): rebuild
  ///      prepared state from the live database and swap that in; returns
  ///      the load error so the caller knows the snapshot was bad.
  ///   3. If even the rebuild fails validation, the server *refuses*: every
  ///      Submit is rejected with kUnavailable and a machine-readable
  ///      retry-after hint (options.refusal_retry_after_ms) until a later
  ///      ReloadSnapshot succeeds.
  ///
  /// Outcomes are reported in `report` (nullable), in the
  /// km.snapshot.reload.* counters, and via km.serve.refused.
  Status ReloadSnapshot(const std::string& path, bool require_swap = false,
                        ReloadReport* report = nullptr) KM_EXCLUDES(mu_);

  /// The engine new requests would run on right now (RCU read-side pin).
  std::shared_ptr<const KeymanticEngine> CurrentEngine() const
      KM_EXCLUDES(mu_);

  /// One consistent counters snapshot.
  ServerStats Stats() const KM_EXCLUDES(mu_);

  OverloadState state() const KM_EXCLUDES(mu_);

  const AdmissionQueue& queue() const { return queue_; }
  const AimdLimiter& limiter() const { return limiter_; }

 private:
  struct Request {
    std::string query;
    size_t k = 0;
    std::unique_ptr<QueryContext> ctx;
    std::promise<StatusOr<AnswerResult>> promise;
  };

  void WorkerLoop() KM_EXCLUDES(mu_);
  /// Completes `request` with kDeadlineExceeded after it expired in the
  /// queue (or while waiting on the concurrency limiter).
  void ExpireRequest(Request* request, double waited_ms) KM_EXCLUDES(mu_);
  /// PredictQueueWaitMs over the server's live queue/limiter/worker state.
  double EstimatedWaitMsLocked() const KM_REQUIRES(mu_);
  /// Recomputes the overload state from queue depth, AIMD limit and recent
  /// sheds; publishes transitions to the metrics registry.
  void RefreshStateLocked(double now_ms) KM_REQUIRES(mu_);

  /// Validation gate between a candidate engine and the swap: the
  /// "snapshot.swap.validate_fail" failpoint plus structural sanity checks.
  Status ValidateCandidate(const KeymanticEngine& candidate) const;

  /// The serving engine. Guarded by mu_ for the swap; workers copy the
  /// shared_ptr per request (RCU read side) and never hold mu_ across a
  /// query.
  std::shared_ptr<const KeymanticEngine> engine_ KM_GUARDED_BY(mu_);
  const EngineServerOptions options_;
  AdmissionQueue queue_;   // internally synchronized
  AimdLimiter limiter_;    // internally synchronized

  mutable Mutex mu_;
  CondVar drain_cv_;
  /// Signalled when an in-flight ReloadSnapshot releases its pin; Shutdown
  /// waits on it so the reload ladder never lands on a destroyed server.
  CondVar reload_cv_;
  uint64_t next_request_id_ KM_GUARDED_BY(mu_) = 1;
  uint64_t submitted_ KM_GUARDED_BY(mu_) = 0;
  uint64_t completed_ KM_GUARDED_BY(mu_) = 0;
  uint64_t expired_in_queue_ KM_GUARDED_BY(mu_) = 0;
  /// Admitted but not yet completed/expired.
  uint64_t outstanding_ KM_GUARDED_BY(mu_) = 0;
  /// EMA of observed service time; 0 until the first completion.
  double ema_service_ms_ KM_GUARDED_BY(mu_) = 0;
  double last_shed_ms_ KM_GUARDED_BY(mu_) = -1e300;
  OverloadState state_ KM_GUARDED_BY(mu_) = OverloadState::kHealthy;
  bool shutdown_called_ KM_GUARDED_BY(mu_) = false;
  /// Bottom rung of the reload ladder: reject Submits until a reload
  /// succeeds.
  bool refusing_ KM_GUARDED_BY(mu_) = false;
  /// ReloadSnapshot calls currently between pin and release. A reload
  /// mid-rebuild will take mu_ and touch engine_/refusing_ when it lands;
  /// Shutdown (and therefore the destructor) must wait for zero.
  uint64_t reloads_inflight_ KM_GUARDED_BY(mu_) = 0;

  std::vector<std::thread> workers_;  // written once in the constructor
};

}  // namespace km

#endif  // KM_SERVE_ENGINE_SERVER_H_
