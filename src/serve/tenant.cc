#include "serve/tenant.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "snapshot/snapshot.h"

namespace km {

namespace {

/// "km.tenant.<id>.<what>" — the per-tenant metric family (prefix
/// registered in common/metric_names.h).
Counter& TenantCounter(const std::string& id, const char* what) {
  return MetricsRegistry::Default().CounterRef("km.tenant." + id + "." + what);
}

void PublishTenantCount(size_t count) {
  MetricsRegistry::Default()
      .GaugeRef("km.tenants.count")
      .Set(static_cast<int64_t>(count));
}

/// A future already resolved with `status` — the shape Submit returns for
/// requests that never reach any tenant's queue.
std::future<StatusOr<AnswerResult>> ImmediateError(Status status) {
  std::promise<StatusOr<AnswerResult>> promise;
  std::future<StatusOr<AnswerResult>> future = promise.get_future();
  promise.set_value(std::move(status));
  return future;
}

}  // namespace

TenantRegistry::~TenantRegistry() { Shutdown(); }

Status TenantRegistry::ValidateTenantId(const std::string& id) {
  if (id.empty()) return Status::InvalidArgument("tenant id is empty");
  if (id.size() > 128) {
    return Status::InvalidArgument("tenant id exceeds 128 bytes");
  }
  for (const char c : id) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) {
      return Status::InvalidArgument("tenant id contains control characters");
    }
  }
  return Status::OK();
}

Status TenantRegistry::AddTenant(const std::string& id,
                                 std::shared_ptr<const KeymanticEngine> engine,
                                 const TenantOptions& options) {
  KM_RETURN_IF_ERROR(ValidateTenantId(id));
  if (engine == nullptr) {
    return Status::InvalidArgument("tenant engine is null");
  }
  // Build the server outside the lock: it spawns worker threads.
  auto server =
      std::make_shared<EngineServer>(std::move(engine), options.server);
  Status rejected = Status::OK();
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      rejected = Status::FailedPrecondition("tenant registry is shut down");
    } else if (tenants_.count(id) != 0) {
      rejected =
          Status::AlreadyExists("tenant \"" + id + "\" already registered");
    } else {
      tenants_.emplace(id, std::move(server));
      PublishTenantCount(tenants_.size());
      return Status::OK();
    }
  }
  // The server we built must not leak running workers; join outside mu_.
  server->Shutdown();
  return rejected;
}

Status TenantRegistry::AddTenantFromSnapshot(const std::string& id,
                                             const Database& db,
                                             const std::string& snapshot_path,
                                             const EngineOptions& engine_options,
                                             const TenantOptions& options) {
  KM_RETURN_IF_ERROR(ValidateTenantId(id));
  KM_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedState> state,
                      LoadSnapshot(snapshot_path));
  KM_ASSIGN_OR_RETURN(
      std::unique_ptr<KeymanticEngine> engine,
      KeymanticEngine::FromPreparedState(db, std::move(state), engine_options));
  return AddTenant(id, std::move(engine), options);
}

Status TenantRegistry::RemoveTenant(const std::string& id) {
  std::shared_ptr<EngineServer> server;
  {
    MutexLock lock(mu_);
    auto it = tenants_.find(id);
    if (it == tenants_.end()) {
      return Status::NotFound("tenant \"" + id + "\" is not registered");
    }
    server = std::move(it->second);
    tenants_.erase(it);
    PublishTenantCount(tenants_.size());
  }
  // Drain and join outside the lock: other tenants keep serving meanwhile.
  server->Shutdown();
  return Status::OK();
}

bool TenantRegistry::HasTenant(const std::string& id) const {
  MutexLock lock(mu_);
  return tenants_.count(id) != 0;
}

std::vector<std::string> TenantRegistry::TenantIds() const {
  MutexLock lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, server] : tenants_) ids.push_back(id);
  return ids;
}

std::shared_ptr<EngineServer> TenantRegistry::Server(
    const std::string& id) const {
  MutexLock lock(mu_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

std::future<StatusOr<AnswerResult>> TenantRegistry::Submit(
    const std::string& id, const std::string& query, size_t k,
    double deadline_ms) {
  std::shared_ptr<EngineServer> server = Server(id);
  if (server == nullptr) {
    MetricsRegistry::Default().CounterRef("km.tenants.unknown").Increment();
    return ImmediateError(
        Status::NotFound("tenant \"" + id + "\" is not registered"));
  }
  TenantCounter(id, "submitted").Increment();
  // Outside mu_: the tenant's own admission queue is the only contention
  // point from here on — one tenant's slow engine cannot block another's
  // Submit path.
  return server->Submit(query, k, deadline_ms);
}

Status TenantRegistry::ReloadTenantSnapshot(const std::string& id,
                                            const std::string& path,
                                            bool require_swap,
                                            ReloadReport* report) {
  std::shared_ptr<EngineServer> server = Server(id);
  if (server == nullptr) {
    return Status::NotFound("tenant \"" + id + "\" is not registered");
  }
  TenantCounter(id, "reloads").Increment();
  return server->ReloadSnapshot(path, require_swap, report);
}

StatusOr<ServerStats> TenantRegistry::StatsFor(const std::string& id) const {
  std::shared_ptr<EngineServer> server = Server(id);
  if (server == nullptr) {
    return Status::NotFound("tenant \"" + id + "\" is not registered");
  }
  return server->Stats();
}

bool TenantRegistry::DrainFor(double deadline_ms) {
  std::vector<std::shared_ptr<EngineServer>> servers;
  {
    MutexLock lock(mu_);
    servers.reserve(tenants_.size());
    for (const auto& [id, server] : tenants_) servers.push_back(server);
  }
  // One shared deadline across tenants: each DrainFor call gets whatever
  // window the earlier ones left over.
  const double start_ms =
      static_cast<double>(MonotonicNowNs()) / 1e6;
  bool drained = true;
  for (const auto& server : servers) {
    const double elapsed =
        static_cast<double>(MonotonicNowNs()) / 1e6 - start_ms;
    drained = server->DrainFor(std::max(0.0, deadline_ms - elapsed)) &&
              drained;
  }
  return drained;
}

void TenantRegistry::Shutdown() {
  std::map<std::string, std::shared_ptr<EngineServer>> tenants;
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    tenants.swap(tenants_);
    PublishTenantCount(0);
  }
  for (auto& [id, server] : tenants) server->Shutdown();
}

}  // namespace km
