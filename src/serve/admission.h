// Admission control: a bounded, deadline-aware queue and an AIMD
// concurrency limiter.
//
// The failure mode this prevents is the classic overload collapse: offered
// load exceeds capacity, the queue grows without bound, every queued
// request waits longer than its deadline, and the server does 100% work for
// 0% goodput. The two pieces here enforce the opposite regime:
//
//   * AdmissionQueue — FIFO with a hard depth cap. Offer() *sheds* (typed
//     kOverloaded Status carrying a suggested retry-after) instead of
//     queueing when the queue is full or when the caller's wait estimate
//     already exceeds the request's remaining deadline — a request that
//     would expire in the queue is cheaper to reject at the door.
//
//   * AimdLimiter — additive-increase / multiplicative-decrease bound on
//     concurrent execution, probing upward while observed latencies stay
//     under target and backing off multiplicatively on overload signals
//     (slow completions, queue sheds). TCP's congestion rule, applied to a
//     worker pool: the limit converges near the concurrency the hardware
//     actually sustains.
//
// Both are thread-safe and expose plain counter accessors; the EngineServer
// (engine_server.h) owns publication to the process metrics registry so
// short-lived queues in tests don't pollute global metrics.

#ifndef KM_SERVE_ADMISSION_H_
#define KM_SERVE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace km {

/// Queue bounds and shed behavior.
struct AdmissionOptions {
  /// Hard queue-depth cap; Offer() sheds beyond it.
  size_t max_queue = 64;
  /// Floor of the suggested retry-after on sheds (the estimate can be 0
  /// before the first completion has calibrated service time).
  double min_retry_after_ms = 25.0;
};

/// Bounded MPMC FIFO of opaque requests. Offer() never blocks (it admits
/// or sheds); Take() blocks until an item or shutdown.
class AdmissionQueue {
 public:
  struct Item {
    uint64_t id = 0;
    /// Opaque request payload (the server stores its Request here).
    std::shared_ptr<void> payload;
    /// Wall-clock budget the request had left when offered; 0 = unlimited.
    double remaining_deadline_ms = 0;
    /// MonotonicNowNs() at admission (stamped by Offer).
    int64_t enqueued_ns = 0;
  };

  explicit AdmissionQueue(AdmissionOptions options = {});

  /// Admits `item` or sheds it with kOverloaded: when the queue is at its
  /// cap, when the server is shutting down (kUnavailable), or when
  /// `estimated_wait_ms` exceeds the item's remaining deadline (it would
  /// expire before a worker picks it up). The shed status carries a
  /// retry-after suggestion derived from the wait estimate.
  Status Offer(Item item, double estimated_wait_ms) KM_EXCLUDES(mu_);

  /// Blocks for the next item. Empty optional once the queue is shut down
  /// *and* drained — the worker-loop exit condition.
  std::optional<Item> Take() KM_EXCLUDES(mu_);

  /// Stops admission (Offer returns kUnavailable). Already-queued items
  /// are still handed out by Take() — shutdown is graceful, not dropping.
  void Shutdown() KM_EXCLUDES(mu_);

  size_t depth() const KM_EXCLUDES(mu_);
  size_t max_depth_seen() const KM_EXCLUDES(mu_);
  uint64_t admitted() const KM_EXCLUDES(mu_);
  uint64_t shed_full() const KM_EXCLUDES(mu_);      ///< depth-cap sheds
  uint64_t shed_deadline() const KM_EXCLUDES(mu_);  ///< wait/deadline sheds
  uint64_t shed_shutdown() const KM_EXCLUDES(mu_);  ///< shutdown rejections
  bool shutdown() const KM_EXCLUDES(mu_);

 private:
  const AdmissionOptions options_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Item> items_ KM_GUARDED_BY(mu_);
  bool shutdown_ KM_GUARDED_BY(mu_) = false;
  size_t max_depth_ KM_GUARDED_BY(mu_) = 0;
  uint64_t admitted_ KM_GUARDED_BY(mu_) = 0;
  uint64_t shed_full_ KM_GUARDED_BY(mu_) = 0;
  uint64_t shed_deadline_ KM_GUARDED_BY(mu_) = 0;
  uint64_t shed_shutdown_ KM_GUARDED_BY(mu_) = 0;
};

/// AIMD tuning. The defaults probe gently and back off hard (the stable
/// corner of the AIMD family).
struct AimdOptions {
  double initial_limit = 8.0;
  double min_limit = 1.0;
  double max_limit = 64.0;
  /// Added to the limit per completion under target latency.
  double increase = 0.25;
  /// Multiplied into the limit on an overload signal.
  double decrease_factor = 0.7;
  /// Completions slower than this are overload signals; 0 disables the
  /// latency signal (only explicit OnOverload() calls shrink the limit).
  double latency_target_ms = 0.0;
  /// Decreases are rate-limited to one per this many milliseconds, so a
  /// burst of slow completions counts as one congestion event (TCP's
  /// once-per-RTT rule).
  double decrease_cooldown_ms = 100.0;
};

/// Thread-safe AIMD concurrency limiter. Acquire() blocks while the
/// in-flight count is at the current limit; Release() reports the
/// completion latency that drives the limit up or down.
class AimdLimiter {
 public:
  /// `now_ms` (optional) replaces the monotonic clock for deterministic
  /// cooldown tests.
  explicit AimdLimiter(AimdOptions options = {},
                       std::function<double()> now_ms = {});

  /// Blocks until an execution slot is free, then claims it.
  void Acquire() KM_EXCLUDES(mu_);

  /// Claims a slot iff one is free right now.
  bool TryAcquire() KM_EXCLUDES(mu_);

  /// Returns a slot. `latency_ms` ≤ target (or no target) is a good sample
  /// (additive increase); above target is an overload signal
  /// (multiplicative decrease, cooldown-limited).
  void Release(double latency_ms) KM_EXCLUDES(mu_);

  /// Returns a slot without feeding the AIMD controller a latency sample.
  /// For requests that never executed (e.g. their deadline expired while
  /// Acquire() blocked): their latency says nothing about service capacity,
  /// and treating it as a good sample would wrongly grow the limit.
  void ReleaseWithoutSample() KM_EXCLUDES(mu_);

  /// External overload signal (e.g. the queue shed a request): same
  /// multiplicative decrease, same cooldown.
  void OnOverload() KM_EXCLUDES(mu_);

  double limit() const KM_EXCLUDES(mu_);
  size_t inflight() const KM_EXCLUDES(mu_);
  uint64_t decreases() const KM_EXCLUDES(mu_);

 private:
  double NowMs() const;
  void DecreaseLocked(double now) KM_REQUIRES(mu_);

  const AimdOptions options_;
  const std::function<double()> now_ms_;
  mutable Mutex mu_;
  CondVar cv_;
  double limit_ KM_GUARDED_BY(mu_);
  size_t inflight_ KM_GUARDED_BY(mu_) = 0;
  double last_decrease_ms_ KM_GUARDED_BY(mu_) = -1e300;
  uint64_t decreases_ KM_GUARDED_BY(mu_) = 0;
};

}  // namespace km

#endif  // KM_SERVE_ADMISSION_H_
