#include "serve/engine_server.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/trace.h"
#include "snapshot/snapshot.h"

namespace km {

namespace {

double NowMs() { return static_cast<double>(MonotonicNowNs()) / 1e6; }

Counter& ServeCounter(const char* what) {
  return MetricsRegistry::Default().CounterRef(std::string("km.serve.") + what);
}

Counter& ReloadCounter(const char* what) {
  return MetricsRegistry::Default().CounterRef(
      std::string("km.snapshot.reload.") + what);
}

}  // namespace

const char* OverloadStateName(OverloadState state) {
  switch (state) {
    case OverloadState::kHealthy:
      return "healthy";
    case OverloadState::kThrottling:
      return "throttling";
    case OverloadState::kShedding:
      return "shedding";
  }
  return "unknown";
}

const char* ReloadRungName(ReloadRung rung) {
  switch (rung) {
    case ReloadRung::kSwapped:
      return "swapped";
    case ReloadRung::kKeptCurrent:
      return "kept_current";
    case ReloadRung::kRebuilt:
      return "rebuilt";
    case ReloadRung::kRefused:
      return "refused";
  }
  return "unknown";
}

EngineServer::EngineServer(const KeymanticEngine& engine,
                           EngineServerOptions options)
    // Borrowed engine: aliasing shared_ptr with a no-op deleter. The caller
    // guarantees the engine outlives the server (pre-RCU contract).
    : EngineServer(std::shared_ptr<const KeymanticEngine>(
                       &engine, [](const KeymanticEngine*) {}),
                   std::move(options)) {}

EngineServer::EngineServer(std::shared_ptr<const KeymanticEngine> engine,
                           EngineServerOptions options)
    : engine_(std::move(engine)),
      options_(options),
      queue_(options.admission),
      limiter_(options.aimd) {
  KM_CHECK(engine_ != nullptr);
  MetricsRegistry::Default().GaugeRef("km.serve.state").Set(0);
  const size_t workers = std::max<size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

EngineServer::~EngineServer() { Shutdown(); }

double PredictQueueWaitMs(size_t queue_depth, double ema_service_ms,
                          double aimd_limit, size_t workers) {
  if (ema_service_ms <= 0) return 0;  // uncalibrated: admit optimistically
  // The AIMD limit bounds concurrent *execution*, but only the worker pool
  // drains the queue: with one worker and a limit of 64, requests still
  // leave the queue one at a time. Dividing by the raw limit under-predicted
  // the wait by up to limit/workers ×, admitting requests that could only
  // expire in the queue.
  const double effective =
      std::max(1.0, std::min(aimd_limit, static_cast<double>(workers)));
  return static_cast<double>(queue_depth) * ema_service_ms / effective;
}

double EngineServer::EstimatedWaitMsLocked() const {
  return PredictQueueWaitMs(queue_.depth(), ema_service_ms_, limiter_.limit(),
                            workers_.size());
}

std::future<StatusOr<AnswerResult>> EngineServer::Submit(
    const std::string& query, size_t k, double deadline_ms) {
  auto request = std::make_shared<Request>();
  request->query = query;
  request->k = k;
  const double deadline =
      deadline_ms > 0 ? deadline_ms : options_.default_deadline_ms;
  QueryLimits limits = options_.limits;
  limits.deadline_ms = deadline;
  // The context starts its deadline clock here, at submit: queue wait is
  // part of the request's wall-clock budget.
  request->ctx = std::make_unique<QueryContext>(limits);
  std::future<StatusOr<AnswerResult>> future = request->promise.get_future();

  MutexLock lock(mu_);
  ++submitted_;
  ServeCounter("submitted").Increment();
  if (refusing_) {
    // Bottom rung of the snapshot-reload ladder: no valid prepared state to
    // serve. Machine-readable retry-after tells clients when to come back.
    ServeCounter("refused").Increment();
    request->promise.set_value(UnavailableStatus(
        "serving state invalid after failed snapshot reload; refusing traffic",
        options_.refusal_retry_after_ms));
    return future;
  }
  AdmissionQueue::Item item;
  item.id = next_request_id_++;
  item.payload = request;
  item.remaining_deadline_ms = deadline;
  const double now = NowMs();
  Status offered = queue_.Offer(std::move(item), EstimatedWaitMsLocked());
  if (!offered.ok()) {
    if (offered.code() == StatusCode::kOverloaded) {
      last_shed_ms_ = now;
      // A shed is an overload signal: shrink the concurrency probe too.
      limiter_.OnOverload();
    }
    ServeCounter("shed").Increment();
    RefreshStateLocked(now);
    request->promise.set_value(std::move(offered));
    return future;
  }
  ++outstanding_;
  ServeCounter("admitted").Increment();
  RefreshStateLocked(now);
  return future;
}

void EngineServer::WorkerLoop() {
  auto& registry = MetricsRegistry::Default();
  Histogram& queue_wait =
      registry.HistogramRef("km.serve.queue_wait_ms", DefaultLatencyBucketsMs());
  Histogram& latency =
      registry.HistogramRef("km.serve.latency_ms", DefaultLatencyBucketsMs());
  while (true) {
    std::optional<AdmissionQueue::Item> item = queue_.Take();
    if (!item.has_value()) return;  // shut down and drained
    auto request = std::static_pointer_cast<Request>(item->payload);
    const double waited_ms =
        static_cast<double>(MonotonicNowNs() - item->enqueued_ns) / 1e6;
    queue_wait.Observe(waited_ms);

    if (request->ctx->Exhausted()) {
      // Dead on arrival: the deadline burned out (or the caller cancelled)
      // while the request sat in the queue. Cheaper to report than to run
      // the engine just to watch it hit the floor of its ladder.
      ExpireRequest(request.get(), waited_ms);
      continue;
    }

    limiter_.Acquire();
    if (request->ctx->Exhausted()) {
      // The deadline burned out while Acquire() blocked on the concurrency
      // limit. Return the slot without a latency sample: this request never
      // executed, so its wait says nothing about service capacity (and a
      // fast "completion" here would wrongly grow the AIMD limit).
      limiter_.ReleaseWithoutSample();
      ExpireRequest(request.get(),
                    static_cast<double>(MonotonicNowNs() - item->enqueued_ns) /
                        1e6);
      continue;
    }
    const double start_ms = NowMs();
    // RCU read side: pin the current engine for the whole request. A
    // concurrent ReloadSnapshot swaps engine_ under mu_; this copy keeps
    // the old engine (and its PreparedState) alive until the last in-flight
    // request drops it — no query ever observes mixed state.
    std::shared_ptr<const KeymanticEngine> engine = CurrentEngine();
    StatusOr<AnswerResult> result =
        engine->Answer(request->query, request->k, request->ctx.get());
    const double latency_ms = NowMs() - start_ms;
    limiter_.Release(latency_ms);
    latency.Observe(latency_ms);
    ServeCounter("completed").Increment();
    request->promise.set_value(std::move(result));

    MutexLock lock(mu_);
    ++completed_;
    if (outstanding_ > 0) --outstanding_;
    // EMA of observed service time feeds the admission wait estimate.
    ema_service_ms_ = ema_service_ms_ <= 0
                          ? latency_ms
                          : 0.8 * ema_service_ms_ + 0.2 * latency_ms;
    RefreshStateLocked(NowMs());
    drain_cv_.NotifyAll();
  }
}

void EngineServer::ExpireRequest(Request* request, double waited_ms) {
  request->promise.set_value(Status::DeadlineExceeded(
      "request expired while queued (waited " +
      std::to_string(static_cast<int64_t>(waited_ms)) + "ms)"));
  ServeCounter("expired_in_queue").Increment();
  MutexLock lock(mu_);
  ++expired_in_queue_;
  if (outstanding_ > 0) --outstanding_;
  RefreshStateLocked(NowMs());
  drain_cv_.NotifyAll();
}

void EngineServer::RefreshStateLocked(double now_ms) {
  OverloadState next;
  if (now_ms - last_shed_ms_ <= options_.shed_window_ms) {
    next = OverloadState::kShedding;
  } else if (queue_.depth() > options_.admission.max_queue / 2 ||
             limiter_.limit() < options_.aimd.initial_limit) {
    next = OverloadState::kThrottling;
  } else {
    next = OverloadState::kHealthy;
  }
  auto& registry = MetricsRegistry::Default();
  registry.GaugeRef("km.serve.queue.depth")
      .Set(static_cast<int64_t>(queue_.depth()));
  registry.GaugeRef("km.serve.aimd_limit")
      .Set(static_cast<int64_t>(limiter_.limit()));
  if (next != state_) {
    state_ = next;
    registry.GaugeRef("km.serve.state").Set(static_cast<int64_t>(next));
    registry
        .CounterRef(std::string("km.serve.transitions.") +
                    OverloadStateName(next))
        .Increment();
  }
}

void EngineServer::Drain() {
  MutexLock lock(mu_);
  while (outstanding_ != 0) drain_cv_.Wait(mu_);
}

bool EngineServer::DrainFor(double deadline_ms) {
  const double deadline = NowMs() + deadline_ms;
  MutexLock lock(mu_);
  while (outstanding_ != 0) {
    const double remaining = deadline - NowMs();
    if (remaining <= 0) return false;
    drain_cv_.WaitForMs(mu_, remaining);
  }
  return true;
}

void EngineServer::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_called_) return;
    shutdown_called_ = true;
    // An in-flight ReloadSnapshot may still be loading or rebuilding and
    // will take mu_ and write engine_/refusing_ when it lands. Returning
    // before it does turns the tail of the reload ladder into a
    // use-after-free once the destructor runs. New reloads bail out at the
    // pin (shutdown_called_ is set), so this wait is bounded by the one
    // rebuild already in flight.
    while (reloads_inflight_ != 0) reload_cv_.Wait(mu_);
  }
  queue_.Shutdown();  // stop admission; workers drain what's already queued
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::shared_ptr<const KeymanticEngine> EngineServer::CurrentEngine() const {
  MutexLock lock(mu_);
  return engine_;
}

Status EngineServer::ValidateCandidate(const KeymanticEngine& candidate) const {
  // Scripted gate failure first: tests drive the rollback/rebuild/refuse
  // rungs deterministically through this site.
  KM_FAILPOINT("snapshot.swap.validate_fail");
  if (candidate.prepared_state() == nullptr) {
    return Status::Internal("candidate engine has no prepared state");
  }
  const size_t expected = candidate.database().schema().TerminologySize();
  if (candidate.terminology().size() != expected) {
    return Status::SnapshotVersionSkew(
        "candidate terminology has " +
        std::to_string(candidate.terminology().size()) +
        " terms, schema derivation expects " + std::to_string(expected));
  }
  return Status::OK();
}

Status EngineServer::ReloadSnapshot(const std::string& path, bool require_swap,
                                    ReloadReport* report) {
  const double start_ms = NowMs();
  ReloadCounter("attempts").Increment();
  auto finish = [&](ReloadRung rung, Status load_status,
                    Status result) -> Status {
    if (report != nullptr) {
      report->rung = rung;
      report->load_status = std::move(load_status);
      report->elapsed_ms = NowMs() - start_ms;
    }
    return result;
  };

  // Pin the reload before any work: Shutdown() waits for in-flight reloads,
  // so the server (mu_, engine_) cannot be destroyed under a rebuild. After
  // shutdown there is nothing to reload into — bail out at the door.
  {
    MutexLock lock(mu_);
    if (shutdown_called_) {
      Status refused = Status::Unavailable("server shut down; reload refused");
      return finish(ReloadRung::kKeptCurrent, refused, refused);
    }
    ++reloads_inflight_;
  }
  struct ReloadPin {
    EngineServer* server;
    ~ReloadPin() {
      MutexLock lock(server->mu_);
      --server->reloads_inflight_;
      server->reload_cv_.NotifyAll();
    }
  } pin{this};

  std::shared_ptr<const KeymanticEngine> current = CurrentEngine();

  // Rung 0: load, assemble, validate, swap.
  Status failure = Status::OK();
  StatusOr<std::shared_ptr<const PreparedState>> loaded = LoadSnapshot(path);
  if (loaded.ok()) {
    StatusOr<std::unique_ptr<KeymanticEngine>> candidate =
        KeymanticEngine::FromPreparedState(current->database(), *loaded,
                                           current->options());
    Status validated = candidate.ok() ? ValidateCandidate(**candidate)
                                      : candidate.status();
    if (validated.ok()) {
      std::shared_ptr<const KeymanticEngine> next = std::move(*candidate);
      MutexLock lock(mu_);
      if (shutdown_called_) {
        // Shutdown raced the load: it is already waiting on our pin. Do not
        // swap state into a server that stopped serving.
        Status refused =
            Status::Unavailable("server shut down during reload; swap dropped");
        return finish(ReloadRung::kKeptCurrent, Status::OK(), refused);
      }
      engine_ = std::move(next);
      refusing_ = false;
      ReloadCounter("swaps").Increment();
      return finish(ReloadRung::kSwapped, Status::OK(), Status::OK());
    }
    failure = std::move(validated);
  } else {
    failure = loaded.status();
  }

  // Rung 1: the snapshot is bad but the running state is trusted — keep it.
  if (!require_swap) {
    ReloadCounter("kept_current").Increment();
    return finish(ReloadRung::kKeptCurrent, failure, failure);
  }

  // Rung 2: the running state is suspect too — rebuild from the database.
  std::shared_ptr<const PreparedState> rebuilt = PreparedState::Build(
      current->database(), PrepareOptionsFromEngine(current->options()));
  StatusOr<std::unique_ptr<KeymanticEngine>> candidate =
      KeymanticEngine::FromPreparedState(current->database(), rebuilt,
                                         current->options());
  Status validated =
      candidate.ok() ? ValidateCandidate(**candidate) : candidate.status();
  if (validated.ok()) {
    std::shared_ptr<const KeymanticEngine> next = std::move(*candidate);
    MutexLock lock(mu_);
    if (shutdown_called_) {
      Status refused =
          Status::Unavailable("server shut down during reload; swap dropped");
      return finish(ReloadRung::kKeptCurrent, failure, refused);
    }
    engine_ = std::move(next);
    refusing_ = false;
    ReloadCounter("rebuilds").Increment();
    // The rebuild restored service, but the reload itself failed: return
    // the typed error so the caller knows the snapshot is bad.
    return finish(ReloadRung::kRebuilt, failure, failure);
  }

  // Rung 3: nothing valid to serve — refuse with a retry-after hint.
  {
    MutexLock lock(mu_);
    // After shutdown every Submit is already rejected; flipping refusing_
    // on a dead server would only confuse a later post-mortem Stats() read.
    if (!shutdown_called_) refusing_ = true;
  }
  ReloadCounter("refusals").Increment();
  return finish(ReloadRung::kRefused, failure,
                UnavailableStatus("snapshot reload failed and rebuild did not "
                                  "validate; refusing traffic",
                                  options_.refusal_retry_after_ms));
}

ServerStats EngineServer::Stats() const {
  MutexLock lock(mu_);
  ServerStats stats;
  stats.submitted = submitted_;
  stats.admitted = queue_.admitted();
  stats.shed =
      queue_.shed_full() + queue_.shed_deadline() + queue_.shed_shutdown();
  stats.completed = completed_;
  stats.expired_in_queue = expired_in_queue_;
  stats.queue_depth = queue_.depth();
  stats.max_queue_depth = queue_.max_depth_seen();
  stats.aimd_limit = limiter_.limit();
  stats.state = state_;
  return stats;
}

OverloadState EngineServer::state() const {
  MutexLock lock(mu_);
  return state_;
}

}  // namespace km
