#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"

namespace km::net {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, std::strerror(errno)));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Counter& NetCounter(const char* what) {
  return MetricsRegistry::Default().CounterRef(std::string("km.net.") + what);
}

}  // namespace

/// Loop-thread-owned state of one live connection.
struct NetServer::Conn {
  explicit Conn(int fd_in, size_t max_payload)
      : fd(fd_in), decoder(max_payload) {}
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  int fd;
  FrameDecoder decoder;
  std::string out;           ///< encoded bytes awaiting write
  std::string tenant;        ///< empty until HELO binds one
  bool close_after_flush = false;
  bool dead = false;         ///< remove at end of the loop turn
  double last_activity_ms = 0;

  struct Pending {
    uint64_t request_id = 0;
    std::future<StatusOr<AnswerResult>> future;
  };
  std::vector<Pending> pending;
};

NetServer::NetServer(TenantRegistry& tenants, NetServerOptions options,
                     std::function<double()> now_ms)
    : tenants_(tenants),
      options_(options),
      now_ms_(now_ms ? std::move(now_ms) : [] {
        return static_cast<double>(MonotonicNowNs()) / 1e6;
      }) {}

NetServer::~NetServer() { Shutdown(); }

double NetServer::Now() const { return now_ms_(); }

Status NetServer::Start() {
  {
    MutexLock lock(mu_);
    if (started_) return Status::FailedPrecondition("server already started");
  }
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return ErrnoStatus("pipe");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  KM_CHECK_OK(SetNonBlocking(wake_read_fd_));
  KM_CHECK_OK(SetNonBlocking(wake_write_fd_));

  if (options_.listen) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return ErrnoStatus("socket");
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // front end is loopback
    addr.sin_port = htons(options_.port);
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return ErrnoStatus("bind");
    }
    if (listen(listen_fd_, options_.backlog) != 0) return ErrnoStatus("listen");
    KM_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return ErrnoStatus("getsockname");
    }
    MutexLock lock(mu_);
    bound_port_ = ntohs(bound.sin_port);
  }

  {
    MutexLock lock(mu_);
    started_ = true;
    stop_ = false;
  }
  loop_ = std::thread([this] { LoopThread(); });
  return Status::OK();
}

uint16_t NetServer::port() const {
  MutexLock lock(mu_);
  return bound_port_;
}

Status NetServer::AdoptConnection(int fd) {
  Status failed = Status::OK();
  {
    MutexLock lock(mu_);
    if (!started_ || stop_) {
      failed = Status::FailedPrecondition("server is not running");
    } else {
      adopt_queue_.push_back(fd);
    }
  }
  if (!failed.ok()) {
    ::close(fd);  // we own the fd either way
    return failed;
  }
  // Nudge the loop out of poll() so adoption is prompt.
  const char byte = 'a';
  (void)!write(wake_write_fd_, &byte, 1);
  return Status::OK();
}

void NetServer::Shutdown() {
  {
    MutexLock lock(mu_);
    if (!started_ || stop_) return;
    stop_ = true;
  }
  const char byte = 's';
  (void)!write(wake_write_fd_, &byte, 1);
  if (loop_.joinable()) loop_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
  MutexLock lock(mu_);
  started_ = false;
}

NetServerStats NetServer::Stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void NetServer::LoopThread() {
  std::vector<std::unique_ptr<Conn>> conns;
  while (LoopTurn(conns, listen_fd_)) {
  }
  // Shutdown: close every connection; pending futures resolve into the
  // void (EngineServer owns the promises and survives the front end).
  MutexLock lock(mu_);
  stats_.disconnects += conns.size();
  stats_.open_connections = 0;
  for (const int fd : adopt_queue_) ::close(fd);
  adopt_queue_.clear();
  MetricsRegistry::Default().GaugeRef("km.net.connections.open").Set(0);
  conns.clear();
}

bool NetServer::LoopTurn(std::vector<std::unique_ptr<Conn>>& conns,
                         int listen_fd) {
  // Assemble the poll set: wakeup pipe, listener, then one slot per conn.
  std::vector<pollfd> fds;
  fds.reserve(conns.size() + 2);
  fds.push_back({wake_read_fd_, POLLIN, 0});
  const size_t listen_slot = fds.size();
  if (listen_fd >= 0 && conns.size() < options_.max_connections) {
    fds.push_back({listen_fd, POLLIN, 0});
  }
  const size_t conn_base = fds.size();
  bool any_pending = false;
  for (const auto& conn : conns) {
    short events = POLLIN;
    if (!conn->out.empty()) events |= POLLOUT;
    if (!conn->pending.empty()) any_pending = true;
    fds.push_back({conn->fd, events, 0});
  }

  // While responses are in flight we poll futures at busy cadence; an idle
  // timeout also needs periodic turns even with no fd activity.
  double wait_ms = any_pending ? options_.busy_poll_ms : options_.idle_poll_ms;
  if (options_.idle_timeout_ms > 0) {
    wait_ms = std::min(wait_ms, options_.idle_poll_ms);
  }
  (void)poll(fds.data(), fds.size(), static_cast<int>(wait_ms));

  // Wakeup pipe: drain it; a shutdown nudge ends the loop.
  if ((fds[0].revents & POLLIN) != 0) {
    char buf[64];
    while (read(wake_read_fd_, buf, sizeof(buf)) > 0) {
    }
  }
  std::vector<int> adopted;
  {
    MutexLock lock(mu_);
    if (stop_) return false;
    adopted.swap(adopt_queue_);
  }

  const double now = Now();

  for (const int fd : adopted) {
    if (conns.size() >= options_.max_connections || !SetNonBlocking(fd).ok()) {
      ::close(fd);
      MutexLock lock(mu_);
      ++stats_.rejected_capacity;
      NetCounter("rejected.capacity").Increment();
      continue;
    }
    auto conn = std::make_unique<Conn>(fd, options_.max_frame_payload);
    conn->last_activity_ms = now;
    conns.push_back(std::move(conn));
    MutexLock lock(mu_);
    ++stats_.adopted;
    NetCounter("connections.adopted").Increment();
  }

  if (listen_fd >= 0 && fds.size() > listen_slot &&
      fds[listen_slot].fd == listen_fd &&
      (fds[listen_slot].revents & POLLIN) != 0) {
    while (true) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN: drained
      if (conns.size() >= options_.max_connections) {
        // Connection-level shedding: close before any protocol exchange.
        ::close(fd);
        MutexLock lock(mu_);
        ++stats_.rejected_capacity;
        NetCounter("rejected.capacity").Increment();
        continue;
      }
      if (!SetNonBlocking(fd).ok()) {
        ::close(fd);
        continue;
      }
      auto conn = std::make_unique<Conn>(fd, options_.max_frame_payload);
      conn->last_activity_ms = now;
      conns.push_back(std::move(conn));
      MutexLock lock(mu_);
      ++stats_.accepted;
      NetCounter("connections.accepted").Increment();
    }
  }

  for (size_t i = 0; i < conns.size(); ++i) {
    Conn& conn = *conns[i];
    const size_t slot = conn_base + i;
    // `adopted` connections joined after the poll set was built; they get
    // their first POLLIN next turn.
    const short revents = slot < fds.size() && fds[slot].fd == conn.fd
                              ? fds[slot].revents
                              : 0;
    if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 && conn.out.empty()) {
      conn.dead = true;
      continue;
    }
    if ((revents & POLLIN) != 0) HandleReadable(conn);
    PollPending(conn);
    FlushWrites(conn);
    if (conn.close_after_flush && conn.out.empty() && conn.pending.empty()) {
      conn.dead = true;
    }
    if (options_.idle_timeout_ms > 0 && !conn.dead &&
        now - conn.last_activity_ms > options_.idle_timeout_ms &&
        conn.pending.empty()) {
      conn.dead = true;
      MutexLock lock(mu_);
      ++stats_.idle_timeouts;
      NetCounter("idle_timeouts").Increment();
    }
  }

  size_t removed = 0;
  for (size_t i = 0; i < conns.size();) {
    if (conns[i]->dead) {
      conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
      ++removed;
    } else {
      ++i;
    }
  }
  {
    MutexLock lock(mu_);
    stats_.disconnects += removed;
    stats_.open_connections = conns.size();
  }
  if (removed > 0) NetCounter("disconnects").Increment();
  MetricsRegistry::Default()
      .GaugeRef("km.net.connections.open")
      .Set(static_cast<int64_t>(conns.size()));
  return true;
}

void NetServer::HandleReadable(Conn& conn) {
  char buf[4096];
  while (true) {
    const ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.last_activity_ms = Now();
      {
        MutexLock lock(mu_);
        stats_.bytes_in += static_cast<uint64_t>(n);
      }
      NetCounter("bytes.in").Increment(static_cast<uint64_t>(n));
      if (conn.close_after_flush) continue;  // discard: already hanging up
      Status fed = conn.decoder.Feed(buf, static_cast<size_t>(n));
      if (!fed.ok()) {
        ProtocolErrorClose(conn, 0, fed);
        return;
      }
      while (true) {
        Frame frame;
        StatusOr<bool> got = conn.decoder.Next(&frame);
        if (!got.ok()) {
          ProtocolErrorClose(conn, 0, got.status());
          return;
        }
        if (!*got) break;
        {
          MutexLock lock(mu_);
          ++stats_.frames_in;
        }
        NetCounter("frames.in").Increment();
        HandleFrame(conn, std::move(frame));
        if (conn.close_after_flush) break;
      }
      continue;
    }
    if (n == 0) {  // peer closed
      conn.dead = conn.out.empty() && conn.pending.empty();
      conn.close_after_flush = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    conn.dead = true;  // ECONNRESET and friends
    return;
  }
}

void NetServer::HandleFrame(Conn& conn, Frame frame) {
  if (FrameIs(frame, "HELO")) {
    StatusOr<std::string> tenant = DecodeHello(frame.payload);
    if (!tenant.ok()) {
      ProtocolErrorClose(conn, frame.request_id, tenant.status());
      return;
    }
    if (!tenants_.HasTenant(*tenant)) {
      {
        MutexLock lock(mu_);
        ++stats_.rejected_unknown_tenant;
      }
      NetCounter("rejected.unknown_tenant").Increment();
      SendFrame(conn, ErrorFrameFor(frame.request_id,
                                    Status::NotFound("unknown tenant \"" +
                                                     *tenant + "\"")));
      conn.close_after_flush = true;
      return;
    }
    conn.tenant = std::move(*tenant);
    SendFrame(conn, MakeFrame("HELO", frame.request_id,
                              EncodeHello(conn.tenant)));
    return;
  }
  if (FrameIs(frame, "QURY")) {
    if (conn.tenant.empty()) {
      ProtocolErrorClose(
          conn, frame.request_id,
          Status::ProtocolError("QURY before HELO bound a tenant"));
      return;
    }
    StatusOr<QueryRequest> request = DecodeQueryRequest(frame.payload);
    if (!request.ok()) {
      ProtocolErrorClose(conn, frame.request_id, request.status());
      return;
    }
    if (request->k == 0 || request->k > options_.max_k) {
      SendFrame(conn,
                ErrorFrameFor(frame.request_id,
                              Status::InvalidArgument(StrFormat(
                                  "k=%u outside [1, %u]", request->k,
                                  options_.max_k))));
      return;
    }
    {
      MutexLock lock(mu_);
      ++stats_.queries;
    }
    NetCounter("queries").Increment();
    Conn::Pending pending;
    pending.request_id = frame.request_id;
    pending.future = tenants_.Submit(conn.tenant, request->text, request->k,
                                     request->deadline_ms);
    conn.pending.push_back(std::move(pending));
    return;
  }
  if (FrameIs(frame, "GBYE")) {
    SendFrame(conn, MakeFrame("GBYE", frame.request_id, std::string()));
    conn.close_after_flush = true;
    return;
  }
  // RESP/ERRR/RTRY are server→client only; a peer sending them is out of
  // contract.
  ProtocolErrorClose(
      conn, frame.request_id,
      Status::ProtocolError("unexpected frame type \"" + frame.type +
                            "\" from client"));
}

void NetServer::PollPending(Conn& conn) {
  for (size_t i = 0; i < conn.pending.size();) {
    Conn::Pending& pending = conn.pending[i];
    if (pending.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ++i;
      continue;
    }
    StatusOr<AnswerResult> result = pending.future.get();
    if (result.ok()) {
      AnswerReply reply;
      reply.quality = static_cast<uint8_t>(result->quality);
      reply.answers.reserve(result->explanations.size());
      for (const Explanation& explanation : result->explanations) {
        AnswerWire answer;
        answer.score = explanation.score;
        answer.sql = explanation.sql.CanonicalSignature();
        reply.answers.push_back(std::move(answer));
      }
      SendFrame(conn, MakeFrame("RESP", pending.request_id,
                                EncodeAnswerReply(reply)));
    } else {
      SendFrame(conn, ErrorFrameFor(pending.request_id, result.status()));
    }
    conn.pending.erase(conn.pending.begin() + static_cast<ptrdiff_t>(i));
  }
}

void NetServer::SendFrame(Conn& conn, const Frame& frame) {
  conn.out.append(EncodeFrame(frame));
  {
    MutexLock lock(mu_);
    ++stats_.frames_out;
  }
  NetCounter("frames.out").Increment();
}

void NetServer::FlushWrites(Conn& conn) {
  while (!conn.out.empty()) {
    const ssize_t n = write(conn.fd, conn.out.data(), conn.out.size());
    if (n > 0) {
      conn.last_activity_ms = Now();
      {
        MutexLock lock(mu_);
        stats_.bytes_out += static_cast<uint64_t>(n);
      }
      NetCounter("bytes.out").Increment(static_cast<uint64_t>(n));
      conn.out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    conn.dead = true;  // EPIPE etc.: the peer is gone
    return;
  }
}

void NetServer::ProtocolErrorClose(Conn& conn, uint64_t request_id,
                                   const Status& why) {
  {
    MutexLock lock(mu_);
    ++stats_.protocol_errors;
  }
  NetCounter("protocol_errors").Increment();
  // Best effort: tell the peer why before hanging up. If the stream is so
  // broken the write fails, FlushWrites marks the conn dead anyway.
  SendFrame(conn, ErrorFrameFor(request_id, why));
  conn.close_after_flush = true;
}

}  // namespace km::net
