#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/strings.h"
#include "common/trace.h"

namespace km::net {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, std::strerror(errno)));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)");
  if (fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Counter& NetCounter(const char* what) {
  return MetricsRegistry::Default().CounterRef(std::string("km.net.") + what);
}

}  // namespace

/// Loop-thread-owned state of one live connection.
struct NetServer::Conn {
  explicit Conn(int fd_in, size_t max_payload)
      : fd(fd_in), decoder(max_payload) {}
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  int fd;
  FrameDecoder decoder;
  std::string out;           ///< encoded bytes awaiting write
  std::string tenant;        ///< empty until HELO binds one
  bool close_after_flush = false;
  bool gbye_sent = false;    ///< drain farewell already queued
  bool dead = false;         ///< remove at end of the loop turn
  double last_activity_ms = 0;
  /// Last time a write made progress (or the outbox was empty) — the
  /// stall-eviction clock.
  double last_progress_ms = 0;

  struct Pending {
    uint64_t request_id = 0;
    std::future<StatusOr<AnswerResult>> future;
    bool ready = false;  ///< future harvested; `wire` awaits outbox room
    std::string wire;    ///< encoded terminal frame, once ready
  };
  std::vector<Pending> pending;
};

NetServer::NetServer(TenantRegistry& tenants, NetServerOptions options,
                     std::function<double()> now_ms)
    : tenants_(tenants),
      options_(options),
      now_ms_(now_ms ? std::move(now_ms) : [] {
        return static_cast<double>(MonotonicNowNs()) / 1e6;
      }) {}

NetServer::~NetServer() { Shutdown(); }

double NetServer::Now() const { return now_ms_(); }

Status NetServer::Start() {
  {
    MutexLock lock(mu_);
    if (started_) return Status::FailedPrecondition("server already started");
  }
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return ErrnoStatus("pipe");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  KM_CHECK_OK(SetNonBlocking(wake_read_fd_));
  KM_CHECK_OK(SetNonBlocking(wake_write_fd_));

  if (options_.listen) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return ErrnoStatus("socket");
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // front end is loopback
    addr.sin_port = htons(options_.port);
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return ErrnoStatus("bind");
    }
    if (listen(listen_fd_, options_.backlog) != 0) return ErrnoStatus("listen");
    KM_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return ErrnoStatus("getsockname");
    }
    MutexLock lock(mu_);
    bound_port_ = ntohs(bound.sin_port);
  }

  {
    MutexLock lock(mu_);
    started_ = true;
    stop_ = false;
    lifecycle_ = ServerLifecycle::kAccepting;
    stats_.lifecycle = lifecycle_;
    drain_requested_ = false;
    drain_completed_ = false;
    drain_evicted_ = 0;
  }
  loop_ = std::thread([this] { LoopThread(); });
  return Status::OK();
}

uint16_t NetServer::port() const {
  MutexLock lock(mu_);
  return bound_port_;
}

ServerLifecycle NetServer::lifecycle() const {
  MutexLock lock(mu_);
  return lifecycle_;
}

Status NetServer::AdoptConnection(int fd) {
  Status failed = Status::OK();
  {
    MutexLock lock(mu_);
    if (!started_ || stop_) {
      failed = Status::FailedPrecondition("server is not running");
    } else if (lifecycle_ != ServerLifecycle::kAccepting) {
      failed = Status::Unavailable("server is draining");
    } else {
      adopt_queue_.push_back(fd);
    }
  }
  if (!failed.ok()) {
    ::close(fd);  // we own the fd either way
    return failed;
  }
  // Nudge the loop out of poll() so adoption is prompt.
  const char byte = 'a';
  (void)!write(wake_write_fd_, &byte, 1);
  return Status::OK();
}

Status NetServer::Drain(double deadline_ms, DrainReport* report) {
  const double start = Now();
  {
    MutexLock lock(mu_);
    if (!started_ || stop_) {
      return Status::FailedPrecondition("server is not running");
    }
    if (lifecycle_ != ServerLifecycle::kAccepting) {
      return Status::FailedPrecondition("drain already requested");
    }
    lifecycle_ = ServerLifecycle::kDraining;
    stats_.lifecycle = lifecycle_;
    drain_requested_ = true;
    drain_deadline_ms_ = start + deadline_ms;
    drain_completed_ = false;
    drain_evicted_ = 0;
  }
  NetCounter("drains").Increment();
  const char byte = 'd';
  (void)!write(wake_write_fd_, &byte, 1);
  MutexLock lock(mu_);
  // The loop thread always lands in kClosed (drain finished, deadline hit,
  // or a concurrent Shutdown won) and notifies.
  while (lifecycle_ != ServerLifecycle::kClosed) lifecycle_cv_.Wait(mu_);
  if (report != nullptr) {
    report->completed = drain_completed_;
    report->evicted = drain_evicted_;
    report->elapsed_ms = Now() - start;
  }
  return Status::OK();
}

void NetServer::Shutdown() {
  {
    MutexLock lock(mu_);
    if (!started_ || stop_) return;
    stop_ = true;
  }
  const char byte = 's';
  (void)!write(wake_write_fd_, &byte, 1);
  if (loop_.joinable()) loop_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
  MutexLock lock(mu_);
  started_ = false;
}

NetServerStats NetServer::Stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void NetServer::DropPending(Conn& conn) {
  if (conn.pending.empty()) return;
  const uint64_t n = conn.pending.size();
  conn.pending.clear();
  {
    MutexLock lock(mu_);
    stats_.queries_dropped += n;
  }
  NetCounter("queries_dropped").Increment(n);
}

void NetServer::LoopThread() {
  std::vector<std::unique_ptr<Conn>> conns;
  while (LoopTurn(conns, listen_fd_)) {
  }
  // Loop exit (shutdown or drain end): close every connection; pending
  // futures resolve into the void (EngineServer owns the promises and
  // survives the front end).
  for (const auto& conn : conns) DropPending(*conn);
  MutexLock lock(mu_);
  stats_.disconnects += conns.size();
  stats_.open_connections = 0;
  for (const int fd : adopt_queue_) ::close(fd);
  adopt_queue_.clear();
  lifecycle_ = ServerLifecycle::kClosed;
  stats_.lifecycle = lifecycle_;
  lifecycle_cv_.NotifyAll();
  MetricsRegistry::Default().GaugeRef("km.net.connections.open").Set(0);
  conns.clear();
}

bool NetServer::ReadPaused(const Conn& conn) const {
  return conn.out.size() >= options_.max_write_buffer_bytes ||
         conn.pending.size() >= options_.max_pending_per_connection;
}

bool NetServer::LoopTurn(std::vector<std::unique_ptr<Conn>>& conns,
                         int listen_fd) {
  {
    MutexLock lock(mu_);
    loop_draining_ = lifecycle_ == ServerLifecycle::kDraining;
    loop_drain_deadline_ms_ = drain_deadline_ms_;
  }

  // Assemble the poll set: wakeup pipe, listener, then one slot per conn.
  // While draining the listener is not polled — no new connections. A
  // backpressured connection loses POLLIN (its events may be 0: errors and
  // hangups are still reported), so a slow reader cannot feed us more work.
  std::vector<pollfd> fds;
  fds.reserve(conns.size() + 2);
  fds.push_back({wake_read_fd_, POLLIN, 0});
  const size_t listen_slot = fds.size();
  const bool poll_listener = listen_fd >= 0 && !loop_draining_ &&
                             conns.size() < options_.max_connections;
  if (poll_listener) fds.push_back({listen_fd, POLLIN, 0});
  const size_t conn_base = fds.size();
  bool any_pending = false;
  for (const auto& conn : conns) {
    short events = 0;
    if (!ReadPaused(*conn)) events |= POLLIN;
    if (!conn->out.empty()) events |= POLLOUT;
    if (!conn->pending.empty()) any_pending = true;
    fds.push_back({conn->fd, events, 0});
  }

  // While responses are in flight we poll futures at busy cadence; timeout
  // and drain-deadline decisions also need periodic turns even with no fd
  // activity (wait_ms is never above idle_poll_ms, so they get them).
  const double wait_ms =
      any_pending ? options_.busy_poll_ms : options_.idle_poll_ms;
  (void)poll(fds.data(), fds.size(), static_cast<int>(wait_ms));

  // Wakeup pipe: drain it; a shutdown nudge ends the loop.
  if ((fds[0].revents & POLLIN) != 0) {
    char buf[64];
    while (read(wake_read_fd_, buf, sizeof(buf)) > 0) {
    }
  }
  std::vector<int> adopted;
  {
    MutexLock lock(mu_);
    if (stop_) return false;
    adopted.swap(adopt_queue_);
    loop_draining_ = lifecycle_ == ServerLifecycle::kDraining;
    loop_drain_deadline_ms_ = drain_deadline_ms_;
  }

  const double now = Now();

  for (const int fd : adopted) {
    if (conns.size() >= options_.max_connections || !SetNonBlocking(fd).ok()) {
      ::close(fd);
      MutexLock lock(mu_);
      ++stats_.rejected_capacity;
      NetCounter("rejected.capacity").Increment();
      continue;
    }
    if (options_.so_sndbuf > 0) {
      setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                 sizeof(options_.so_sndbuf));
    }
    auto conn = std::make_unique<Conn>(fd, options_.max_frame_payload);
    conn->last_activity_ms = now;
    conn->last_progress_ms = now;
    conns.push_back(std::move(conn));
    MutexLock lock(mu_);
    ++stats_.adopted;
    NetCounter("connections.adopted").Increment();
  }

  if (poll_listener && fds.size() > listen_slot &&
      fds[listen_slot].fd == listen_fd &&
      (fds[listen_slot].revents & POLLIN) != 0) {
    while (true) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        MutexLock lock(mu_);
        ++stats_.accept_failures;
        NetCounter("accept_failures").Increment();
        break;
      }
      bool inject_accept_failure = false;
      KM_FAILPOINT_VISIT("net.server.accept_fail", nullptr,
                         &inject_accept_failure);
      if (inject_accept_failure) {
        ::close(fd);
        MutexLock lock(mu_);
        ++stats_.accept_failures;
        NetCounter("accept_failures").Increment();
        continue;
      }
      if (conns.size() >= options_.max_connections) {
        // Connection-level shedding: close before any protocol exchange.
        ::close(fd);
        MutexLock lock(mu_);
        ++stats_.rejected_capacity;
        NetCounter("rejected.capacity").Increment();
        continue;
      }
      if (!SetNonBlocking(fd).ok()) {
        ::close(fd);
        continue;
      }
      if (options_.so_sndbuf > 0) {
        setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                   sizeof(options_.so_sndbuf));
      }
      auto conn = std::make_unique<Conn>(fd, options_.max_frame_payload);
      conn->last_activity_ms = now;
      conn->last_progress_ms = now;
      conns.push_back(std::move(conn));
      MutexLock lock(mu_);
      ++stats_.accepted;
      NetCounter("connections.accepted").Increment();
    }
  }

  for (size_t i = 0; i < conns.size(); ++i) {
    Conn& conn = *conns[i];
    const size_t slot = conn_base + i;
    // `adopted` connections joined after the poll set was built; they get
    // their first POLLIN next turn.
    const short revents = slot < fds.size() && fds[slot].fd == conn.fd
                              ? fds[slot].revents
                              : 0;
    if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 && conn.out.empty()) {
      conn.dead = true;
      DropPending(conn);
      continue;
    }
    if ((revents & POLLIN) != 0) HandleReadable(conn);
    // Backpressure may have left complete frames in the decoder; resume
    // them once replies drained below the watermarks.
    ProcessDecodedFrames(conn);
    PollPending(conn);
    if (loop_draining_ && !conn.dead && !conn.close_after_flush &&
        !conn.gbye_sent && conn.pending.empty()) {
      // Nothing left in flight for this peer: say goodbye and hang up once
      // the farewell (and everything queued before it) is flushed.
      SendFrame(conn, MakeFrame("GBYE", 0, std::string()));
      conn.gbye_sent = true;
      conn.close_after_flush = true;
    }
    FlushWrites(conn);
    if (conn.close_after_flush && conn.out.empty() && conn.pending.empty()) {
      conn.dead = true;
    }
    if (options_.write_stall_timeout_ms > 0 && !conn.dead &&
        !conn.out.empty() &&
        now - conn.last_progress_ms > options_.write_stall_timeout_ms) {
      conn.dead = true;
      DropPending(conn);
      MutexLock lock(mu_);
      ++stats_.evicted_slow;
      NetCounter("evicted_slow").Increment();
    }
    const bool pre_helo = conn.tenant.empty();
    const double silence_limit = pre_helo && options_.hello_timeout_ms > 0
                                     ? options_.hello_timeout_ms
                                     : options_.idle_timeout_ms;
    if (silence_limit > 0 && !conn.dead &&
        now - conn.last_activity_ms > silence_limit && conn.pending.empty()) {
      conn.dead = true;
      MutexLock lock(mu_);
      if (pre_helo) {
        ++stats_.hello_timeouts;
        NetCounter("hello_timeouts").Increment();
      } else {
        ++stats_.idle_timeouts;
        NetCounter("idle_timeouts").Increment();
      }
    }
  }

  size_t removed = 0;
  for (size_t i = 0; i < conns.size();) {
    if (conns[i]->dead) {
      DropPending(*conns[i]);
      conns.erase(conns.begin() + static_cast<ptrdiff_t>(i));
      ++removed;
    } else {
      ++i;
    }
  }
  {
    MutexLock lock(mu_);
    stats_.disconnects += removed;
    stats_.open_connections = conns.size();
  }
  if (removed > 0) NetCounter("disconnects").Increment();
  MetricsRegistry::Default()
      .GaugeRef("km.net.connections.open")
      .Set(static_cast<int64_t>(conns.size()));

  if (loop_draining_) {
    if (conns.empty()) {
      MutexLock lock(mu_);
      drain_completed_ = true;
      return false;  // LoopThread's epilogue lands in kClosed and notifies
    }
    if (now >= loop_drain_deadline_ms_) {
      // Deadline: the stragglers (stalled outboxes, wedged peers) are
      // evicted by the epilogue rather than wedging the drain.
      MutexLock lock(mu_);
      drain_completed_ = false;
      drain_evicted_ = conns.size();
      return false;
    }
  }
  return true;
}

void NetServer::HandleReadable(Conn& conn) {
  char buf[4096];
  while (true) {
    const ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.last_activity_ms = Now();
      {
        MutexLock lock(mu_);
        stats_.bytes_in += static_cast<uint64_t>(n);
      }
      NetCounter("bytes.in").Increment(static_cast<uint64_t>(n));
      if (conn.close_after_flush) continue;  // discard: already hanging up
      Status fed = conn.decoder.Feed(buf, static_cast<size_t>(n));
      if (!fed.ok()) {
        ProtocolErrorClose(conn, 0, fed);
        return;
      }
      ProcessDecodedFrames(conn);
      if (conn.dead || ReadPaused(conn)) return;  // backpressure: stop here
      continue;
    }
    if (n == 0) {  // peer closed
      conn.dead = conn.out.empty() && conn.pending.empty();
      conn.close_after_flush = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    conn.dead = true;  // ECONNRESET and friends
    DropPending(conn);
    return;
  }
}

void NetServer::ProcessDecodedFrames(Conn& conn) {
  while (!conn.dead && !conn.close_after_flush && !ReadPaused(conn)) {
    Frame frame;
    StatusOr<bool> got = conn.decoder.Next(&frame);
    if (!got.ok()) {
      ProtocolErrorClose(conn, 0, got.status());
      return;
    }
    if (!*got) return;
    {
      MutexLock lock(mu_);
      ++stats_.frames_in;
    }
    NetCounter("frames.in").Increment();
    HandleFrame(conn, std::move(frame));
  }
}

void NetServer::HandleFrame(Conn& conn, Frame frame) {
  if (loop_draining_ && (FrameIs(frame, "QURY") || FrameIs(frame, "HELO"))) {
    // Winding down: nothing new is admitted. The retry-after hint points
    // the client past the rest of the drain window.
    const double remaining =
        std::max(1.0, loop_drain_deadline_ms_ - Now());
    SendFrame(conn, ErrorFrameFor(frame.request_id,
                                  UnavailableStatus("server draining",
                                                    remaining)));
    {
      MutexLock lock(mu_);
      ++stats_.drain_rtry;
    }
    NetCounter("drain.rtry").Increment();
    return;
  }
  if (FrameIs(frame, "HELO")) {
    StatusOr<std::string> tenant = DecodeHello(frame.payload);
    if (!tenant.ok()) {
      ProtocolErrorClose(conn, frame.request_id, tenant.status());
      return;
    }
    if (!tenants_.HasTenant(*tenant)) {
      {
        MutexLock lock(mu_);
        ++stats_.rejected_unknown_tenant;
      }
      NetCounter("rejected.unknown_tenant").Increment();
      SendFrame(conn, ErrorFrameFor(frame.request_id,
                                    Status::NotFound("unknown tenant \"" +
                                                     *tenant + "\"")));
      conn.close_after_flush = true;
      return;
    }
    conn.tenant = std::move(*tenant);
    SendFrame(conn, MakeFrame("HELO", frame.request_id,
                              EncodeHello(conn.tenant)));
    return;
  }
  if (FrameIs(frame, "QURY")) {
    if (conn.tenant.empty()) {
      ProtocolErrorClose(
          conn, frame.request_id,
          Status::ProtocolError("QURY before HELO bound a tenant"));
      return;
    }
    StatusOr<QueryRequest> request = DecodeQueryRequest(frame.payload);
    if (!request.ok()) {
      ProtocolErrorClose(conn, frame.request_id, request.status());
      return;
    }
    if (request->k == 0 || request->k > options_.max_k) {
      SendFrame(conn,
                ErrorFrameFor(frame.request_id,
                              Status::InvalidArgument(StrFormat(
                                  "k=%u outside [1, %u]", request->k,
                                  options_.max_k))));
      return;
    }
    {
      MutexLock lock(mu_);
      ++stats_.queries;
    }
    NetCounter("queries").Increment();
    Conn::Pending pending;
    pending.request_id = frame.request_id;
    pending.future = tenants_.Submit(conn.tenant, request->text, request->k,
                                     request->deadline_ms);
    conn.pending.push_back(std::move(pending));
    return;
  }
  if (FrameIs(frame, "GBYE")) {
    SendFrame(conn, MakeFrame("GBYE", frame.request_id, std::string()));
    conn.close_after_flush = true;
    return;
  }
  // RESP/ERRR/RTRY are server→client only; a peer sending them is out of
  // contract.
  ProtocolErrorClose(
      conn, frame.request_id,
      Status::ProtocolError("unexpected frame type \"" + frame.type +
                            "\" from client"));
}

void NetServer::PollPending(Conn& conn) {
  // Harvest finished futures into their encoded terminal frames.
  for (Conn::Pending& pending : conn.pending) {
    if (pending.ready) continue;
    if (pending.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      continue;
    }
    StatusOr<AnswerResult> result = pending.future.get();
    Frame frame;
    if (result.ok()) {
      AnswerReply reply;
      reply.quality = static_cast<uint8_t>(result->quality);
      reply.answers.reserve(result->explanations.size());
      for (const Explanation& explanation : result->explanations) {
        AnswerWire answer;
        answer.score = explanation.score;
        answer.sql = explanation.sql.CanonicalSignature();
        reply.answers.push_back(std::move(answer));
      }
      frame = MakeFrame("RESP", pending.request_id, EncodeAnswerReply(reply));
    } else {
      frame = ErrorFrameFor(pending.request_id, result.status());
    }
    pending.wire = EncodeFrame(frame);
    pending.ready = true;
  }
  // Move ready replies into the outbox while there is room below the
  // high-water mark (an oversized frame still goes out alone, so a cap
  // below one frame cannot deadlock the connection).
  for (size_t i = 0; i < conn.pending.size();) {
    Conn::Pending& pending = conn.pending[i];
    const bool fits =
        conn.out.empty() || conn.out.size() + pending.wire.size() <=
                                options_.max_write_buffer_bytes;
    if (!pending.ready || !fits) {
      ++i;
      continue;
    }
    AppendToOutbox(conn, pending.wire);
    {
      MutexLock lock(mu_);
      ++stats_.frames_out;
      ++stats_.replies;
    }
    NetCounter("frames.out").Increment();
    NetCounter("replies").Increment();
    conn.pending.erase(conn.pending.begin() + static_cast<ptrdiff_t>(i));
  }
}

void NetServer::AppendToOutbox(Conn& conn, const std::string& wire) {
  if (conn.out.empty()) conn.last_progress_ms = Now();
  conn.out.append(wire);
  MutexLock lock(mu_);
  if (conn.out.size() > stats_.outbox_high_water) {
    stats_.outbox_high_water = conn.out.size();
    MetricsRegistry::Default()
        .GaugeRef("km.net.outbox.high_water")
        .Set(static_cast<int64_t>(conn.out.size()));
  }
}

void NetServer::SendFrame(Conn& conn, const Frame& frame) {
  AppendToOutbox(conn, EncodeFrame(frame));
  {
    MutexLock lock(mu_);
    ++stats_.frames_out;
  }
  NetCounter("frames.out").Increment();
}

void NetServer::FlushWrites(Conn& conn) {
  while (!conn.out.empty()) {
    size_t attempt = conn.out.size();
    KM_FAILPOINT_VISIT("net.server.short_write", nullptr, &attempt);
    attempt = std::max<size_t>(1, std::min(attempt, conn.out.size()));
    bool inject_write_error = false;
    KM_FAILPOINT_VISIT("net.server.write_error", nullptr, &inject_write_error);
    // Timestamp taken *before* the send: the instant send() returns, the
    // peer can see the bytes and act on them — if it acts (or a test
    // advances the injected clock) before we stamp, a post-send Now()
    // would record activity in that future and idle accounting would
    // never see this connection as silent.
    const double sent_at_ms = Now();
    ssize_t n;
    if (inject_write_error) {
      n = -1;
      errno = ECONNRESET;
    } else {
      // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
      n = ::send(conn.fd, conn.out.data(), attempt, MSG_NOSIGNAL);
    }
    if (n > 0) {
      conn.last_activity_ms = sent_at_ms;
      conn.last_progress_ms = sent_at_ms;
      {
        MutexLock lock(mu_);
        stats_.bytes_out += static_cast<uint64_t>(n);
      }
      NetCounter("bytes.out").Increment(static_cast<uint64_t>(n));
      conn.out.erase(0, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < attempt) return;  // kernel buffer full
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    conn.dead = true;  // EPIPE etc.: the peer is gone
    DropPending(conn);
    {
      MutexLock lock(mu_);
      ++stats_.write_errors;
    }
    NetCounter("write_errors").Increment();
    return;
  }
}

void NetServer::ProtocolErrorClose(Conn& conn, uint64_t request_id,
                                   const Status& why) {
  {
    MutexLock lock(mu_);
    ++stats_.protocol_errors;
  }
  NetCounter("protocol_errors").Increment();
  // Best effort: tell the peer why before hanging up. If the stream is so
  // broken the write fails, FlushWrites marks the conn dead anyway.
  SendFrame(conn, ErrorFrameFor(request_id, why));
  conn.close_after_flush = true;
}

}  // namespace km::net
