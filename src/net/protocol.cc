#include "net/protocol.h"

#include <cstring>

#include "common/check.h"
#include "common/retry.h"
#include "common/strings.h"

namespace km::net {

namespace {

bool IsRegisteredTag(const char* tag) {
  for (const char* known : kFrameTypeTags) {
    if (std::strncmp(tag, known, kFrameTagBytes) == 0 &&
        std::strlen(tag) == kFrameTagBytes) {
      return true;
    }
  }
  return false;
}

void PutU32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU64(std::string& out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void PutF64(std::string& out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Bounds-checked little-endian reader over a payload string. Any read past
/// the end flips `ok` and returns zero; callers check ok once at the end
/// (and on loop bounds) instead of sprinkling error paths.
struct Reader {
  const std::string& data;
  size_t pos = 0;
  bool ok = true;

  bool Have(size_t n) {
    if (data.size() - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  uint16_t U16() {
    if (!Have(2)) return 0;
    const auto* p = reinterpret_cast<const unsigned char*>(data.data() + pos);
    pos += 2;
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
  }
  uint32_t U32() {
    if (!Have(4)) return 0;
    const auto* p = reinterpret_cast<const unsigned char*>(data.data() + pos);
    pos += 4;
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  }
  uint64_t U64() {
    const uint64_t lo = U32();
    const uint64_t hi = U32();
    return lo | (hi << 32);
  }
  double F64() {
    const uint64_t bits = U64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Bytes(size_t n) {
    if (!Have(n)) return std::string();
    std::string out = data.substr(pos, n);
    pos += n;
    return out;
  }
  bool Done() const { return ok && pos == data.size(); }
};

Status PayloadError(const char* type, const char* what) {
  return Status::ProtocolError(
      StrFormat("malformed %s payload: %s", type, what));
}

}  // namespace

Frame MakeFrame(const char* tag, uint64_t request_id, std::string payload) {
  KM_DCHECK(IsRegisteredTag(tag));
  Frame frame;
  frame.type.assign(tag, kFrameTagBytes);
  frame.request_id = request_id;
  frame.payload = std::move(payload);
  return frame;
}

bool FrameIs(const Frame& frame, const char* tag) {
  KM_DCHECK(IsRegisteredTag(tag));
  return frame.type.size() == kFrameTagBytes &&
         std::strncmp(frame.type.data(), tag, kFrameTagBytes) == 0;
}

std::string EncodeFrame(const Frame& frame) {
  KM_CHECK_EQ(frame.type.size(), kFrameTagBytes);
  std::string out;
  out.reserve(kFrameLengthPrefixBytes + kFrameFixedBodyBytes +
              frame.payload.size());
  PutU32(out,
         static_cast<uint32_t>(kFrameFixedBodyBytes + frame.payload.size()));
  out.push_back(static_cast<char>(kProtocolVersion));
  out.append(frame.type);
  PutU64(out, frame.request_id);
  out.append(frame.payload);
  return out;
}

FrameDecoder::FrameDecoder(size_t max_payload) : max_payload_(max_payload) {}

Status FrameDecoder::Fail(std::string what) {
  error_ = Status::ProtocolError(std::move(what));
  buffer_.clear();  // framing is lost; never parse past a violation
  return error_;
}

Status FrameDecoder::ValidateBufferedHeader() {
  if (buffer_.size() < kFrameLengthPrefixBytes) return Status::OK();
  const auto* p = reinterpret_cast<const unsigned char*>(buffer_.data());
  const uint32_t body_len = static_cast<uint32_t>(p[0]) |
                            (static_cast<uint32_t>(p[1]) << 8) |
                            (static_cast<uint32_t>(p[2]) << 16) |
                            (static_cast<uint32_t>(p[3]) << 24);
  if (body_len < kFrameFixedBodyBytes) {
    return Fail(StrFormat("frame body length %u below fixed header size %zu",
                          body_len, kFrameFixedBodyBytes));
  }
  if (body_len > kFrameFixedBodyBytes + max_payload_) {
    return Fail(StrFormat("frame body length %u exceeds cap %zu", body_len,
                          kFrameFixedBodyBytes + max_payload_));
  }
  if (buffer_.size() < kFrameLengthPrefixBytes + 1) return Status::OK();
  const uint8_t version = p[kFrameLengthPrefixBytes];
  if (version != kProtocolVersion) {
    return Fail(StrFormat("unsupported protocol version %u (expected %u)",
                          version, kProtocolVersion));
  }
  if (buffer_.size() < kFrameLengthPrefixBytes + 1 + kFrameTagBytes) {
    return Status::OK();
  }
  for (size_t i = 0; i < kFrameTagBytes; ++i) {
    const char c = buffer_[kFrameLengthPrefixBytes + 1 + i];
    if ((c < 'A' || c > 'Z') && (c < '0' || c > '9')) {
      return Fail("frame type tag is not 4 chars of [A-Z0-9]");
    }
  }
  return Status::OK();
}

Status FrameDecoder::Feed(const char* data, size_t size) {
  if (!error_.ok()) return error_;
  buffer_.append(data, size);
  // Validate what the header alone can prove, eagerly: a hostile length
  // prefix is rejected here, before Next() would size a payload for it.
  return ValidateBufferedHeader();
}

StatusOr<bool> FrameDecoder::Next(Frame* out) {
  if (!error_.ok()) return error_;
  if (buffer_.size() < kFrameLengthPrefixBytes + kFrameFixedBodyBytes) {
    return false;
  }
  Reader reader{buffer_};
  const uint32_t body_len = reader.U32();
  // Feed() validated the range already; re-check defensively.
  if (body_len < kFrameFixedBodyBytes ||
      body_len > kFrameFixedBodyBytes + max_payload_) {
    return Fail("frame body length out of range");
  }
  if (buffer_.size() < kFrameLengthPrefixBytes + body_len) return false;
  // Version and tag characters were validated by ValidateBufferedHeader.
  Frame frame;
  frame.type = buffer_.substr(kFrameLengthPrefixBytes + 1, kFrameTagBytes);
  reader.pos = kFrameLengthPrefixBytes + 1 + kFrameTagBytes;
  frame.request_id = reader.U64();
  frame.payload = reader.Bytes(body_len - kFrameFixedBodyBytes);
  KM_DCHECK(reader.ok);
  if (!IsRegisteredTag(frame.type.c_str())) {
    return Fail(StrFormat("unknown frame type tag \"%s\"", frame.type.c_str()));
  }
  buffer_.erase(0, kFrameLengthPrefixBytes + body_len);
  ++frames_decoded_;
  *out = std::move(frame);
  // The next frame's header may already be buffered — validate it now so a
  // hostile length behind a valid frame still fails before allocation.
  KM_RETURN_IF_ERROR(ValidateBufferedHeader());
  return true;
}

// --- Payload codecs -------------------------------------------------------

std::string EncodeQueryRequest(const QueryRequest& request) {
  std::string out;
  PutU32(out, request.k);
  PutF64(out, request.deadline_ms);
  PutU32(out, static_cast<uint32_t>(request.text.size()));
  out.append(request.text);
  return out;
}

StatusOr<QueryRequest> DecodeQueryRequest(const std::string& payload) {
  Reader reader{payload};
  QueryRequest request;
  request.k = reader.U32();
  request.deadline_ms = reader.F64();
  const uint32_t len = reader.U32();
  if (!reader.Have(len)) return PayloadError("QURY", "text length overruns");
  request.text = reader.Bytes(len);
  if (!reader.Done()) return PayloadError("QURY", "trailing bytes");
  return request;
}

std::string EncodeAnswerReply(const AnswerReply& reply) {
  std::string out;
  out.push_back(static_cast<char>(reply.quality));
  PutU32(out, static_cast<uint32_t>(reply.answers.size()));
  for (const AnswerWire& answer : reply.answers) {
    PutF64(out, answer.score);
    PutU32(out, static_cast<uint32_t>(answer.sql.size()));
    out.append(answer.sql);
  }
  return out;
}

StatusOr<AnswerReply> DecodeAnswerReply(const std::string& payload) {
  Reader reader{payload};
  AnswerReply reply;
  if (!reader.Have(1)) return PayloadError("RESP", "missing quality byte");
  reply.quality = static_cast<uint8_t>(payload[reader.pos++]);
  const uint32_t count = reader.U32();
  // Each answer costs at least 12 bytes on the wire; a count the payload
  // cannot possibly hold is rejected before any reserve().
  if (count > (payload.size() / 12) + 1) {
    return PayloadError("RESP", "answer count exceeds payload size");
  }
  reply.answers.reserve(count);
  for (uint32_t i = 0; i < count && reader.ok; ++i) {
    AnswerWire answer;
    answer.score = reader.F64();
    const uint32_t len = reader.U32();
    if (!reader.Have(len)) return PayloadError("RESP", "sql length overruns");
    answer.sql = reader.Bytes(len);
    reply.answers.push_back(std::move(answer));
  }
  if (!reader.Done()) return PayloadError("RESP", "truncated or trailing bytes");
  return reply;
}

std::string EncodeErrorReply(const ErrorReply& reply) {
  std::string out;
  PutU16(out, reply.code);
  PutF64(out, reply.retry_after_ms);
  PutU32(out, static_cast<uint32_t>(reply.message.size()));
  out.append(reply.message);
  return out;
}

StatusOr<ErrorReply> DecodeErrorReply(const std::string& payload) {
  Reader reader{payload};
  ErrorReply reply;
  reply.code = reader.U16();
  reply.retry_after_ms = reader.F64();
  const uint32_t len = reader.U32();
  if (!reader.Have(len)) return PayloadError("ERRR", "message length overruns");
  reply.message = reader.Bytes(len);
  if (!reader.Done()) return PayloadError("ERRR", "trailing bytes");
  return reply;
}

std::string EncodeHello(const std::string& tenant) {
  std::string out;
  PutU32(out, static_cast<uint32_t>(tenant.size()));
  out.append(tenant);
  return out;
}

StatusOr<std::string> DecodeHello(const std::string& payload) {
  Reader reader{payload};
  const uint32_t len = reader.U32();
  if (!reader.Have(len)) return PayloadError("HELO", "tenant length overruns");
  std::string tenant = reader.Bytes(len);
  if (!reader.Done()) return PayloadError("HELO", "trailing bytes");
  return tenant;
}

Frame ErrorFrameFor(uint64_t request_id, const Status& status) {
  ErrorReply reply;
  reply.code = static_cast<uint16_t>(status.code());
  reply.message = status.message();
  if (status.code() == StatusCode::kOverloaded ||
      status.code() == StatusCode::kUnavailable) {
    reply.retry_after_ms = SuggestedRetryAfterMs(status);
    return MakeFrame("RTRY", request_id, EncodeErrorReply(reply));
  }
  return MakeFrame("ERRR", request_id, EncodeErrorReply(reply));
}

Status StatusFromErrorReply(const ErrorReply& reply) {
  const auto code = static_cast<StatusCode>(reply.code);
  if (reply.retry_after_ms > 0 && code == StatusCode::kOverloaded) {
    return OverloadedStatus(reply.message, reply.retry_after_ms);
  }
  if (reply.retry_after_ms > 0 && code == StatusCode::kUnavailable) {
    return UnavailableStatus(reply.message, reply.retry_after_ms);
  }
  return Status(code, reply.message);
}

}  // namespace km::net
