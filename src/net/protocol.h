// Length-prefixed binary wire protocol for the keymantic serving front end.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//   0       4     body_len  — bytes that follow this field
//   4       1     version   — kProtocolVersion (1)
//   5       4     type tag  — 4 ASCII chars from kFrameTypeTags
//   9       8     request_id — caller-chosen correlation id, echoed back
//   17      ...   payload   — type-specific, body_len - 13 bytes
//
// The decoder validates body_len against the frame-size cap *before* any
// payload allocation: a hostile 4 GiB length prefix is rejected after four
// buffered bytes. Any malformed input yields a sticky typed kProtocolError
// — never a crash, never unbounded allocation — after which the connection
// must be dropped (the stream has lost framing).
//
// Frame types (the catalog; km_lint rule R7 checks every MakeFrame/FrameIs
// call site against this list):
//
//   HELO  client → server: bind the connection to a tenant id; server
//         echoes HELO on success or ERRR (kNotFound) on unknown tenant.
//   QURY  client → server: one keyword query (k, deadline_ms, text).
//   RESP  server → client: ranked answers for a QURY (scores + SQL
//         canonical signatures).
//   ERRR  server → client: typed terminal failure (status code + message).
//   RTRY  server → client: retryable rejection (kOverloaded/kUnavailable)
//         with a machine-readable retry-after hint.
//   GBYE  either side: orderly close; the server echoes GBYE and flushes.

#ifndef KM_NET_PROTOCOL_H_
#define KM_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace km::net {

/// Wire protocol version stamped into every frame header.
inline constexpr uint8_t kProtocolVersion = 1;

/// Catalog of the 4-char ASCII frame type tags (see file comment).
/// km_lint R7: every tag used at a MakeFrame/FrameIs call site must be
/// registered here.
inline constexpr const char* kFrameTypeTags[] = {
    "HELO",  // bind connection to a tenant
    "QURY",  // keyword query request
    "RESP",  // ranked answers
    "ERRR",  // typed terminal error
    "RTRY",  // retryable rejection + retry-after hint
    "GBYE",  // orderly close
};

/// Bytes in one frame type tag.
inline constexpr size_t kFrameTagBytes = 4;
/// Fixed body bytes before the payload: version + tag + request_id.
inline constexpr size_t kFrameFixedBodyBytes = 1 + kFrameTagBytes + 8;
/// The length prefix itself.
inline constexpr size_t kFrameLengthPrefixBytes = 4;
/// Default cap on a frame's payload (1 MiB). body_len above
/// kFrameFixedBodyBytes + cap is a protocol error.
inline constexpr size_t kDefaultMaxFramePayload = 1u << 20;

/// One decoded (or to-be-encoded) frame.
struct Frame {
  std::string type;        ///< 4-char tag from kFrameTypeTags
  uint64_t request_id = 0; ///< correlation id, echoed in replies
  std::string payload;     ///< type-specific bytes
};

/// Builds a frame. `tag` must be a registered 4-char tag (checked with
/// KM_DCHECK in debug builds; km_lint R7 checks call sites lexically).
Frame MakeFrame(const char* tag, uint64_t request_id, std::string payload);

/// True iff `frame` carries the given registered tag.
bool FrameIs(const Frame& frame, const char* tag);

/// Serializes a frame to wire bytes (length prefix + body).
std::string EncodeFrame(const Frame& frame);

/// Incremental frame decoder for one connection. Feed() buffers bytes;
/// Next() extracts complete frames. Any protocol violation (bad version,
/// unregistered tag, oversized or undersized length prefix) makes the
/// decoder *sticky-failed*: every later call returns the same typed
/// kProtocolError and no further bytes are buffered.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxFramePayload);

  /// Appends raw bytes from the stream. Cheap; validation that can be done
  /// from the header alone (length prefix range) happens eagerly so a
  /// hostile length never causes a matching allocation.
  Status Feed(const char* data, size_t size);

  /// Extracts the next complete frame into `*out`. Returns true when a
  /// frame was produced, false when more bytes are needed, or the sticky
  /// kProtocolError when the stream is malformed.
  StatusOr<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buffer_.size(); }

  /// Complete frames produced so far.
  uint64_t frames_decoded() const { return frames_decoded_; }

  /// The sticky error (OK while the stream is healthy).
  const Status& error() const { return error_; }

 private:
  Status Fail(std::string what);
  /// Validates the length prefix / header fields currently in buffer_,
  /// without consuming them. Returns OK also when too few bytes arrived.
  Status ValidateBufferedHeader();

  size_t max_payload_;
  std::string buffer_;
  uint64_t frames_decoded_ = 0;
  Status error_ = Status::OK();
};

// --- Payload codecs -------------------------------------------------------
//
// Each payload codec is total: Decode* returns kProtocolError on any
// inconsistency (short payload, trailing bytes, absurd counts) instead of
// reading out of bounds. Encode*/Decode* round-trip bit-exactly.

/// QURY payload: u32 k | f64 deadline_ms | u32 text_len | text.
struct QueryRequest {
  uint32_t k = 0;
  double deadline_ms = 0;
  std::string text;
};
std::string EncodeQueryRequest(const QueryRequest& request);
StatusOr<QueryRequest> DecodeQueryRequest(const std::string& payload);

/// One ranked answer inside a RESP payload.
struct AnswerWire {
  double score = 0;
  std::string sql;  ///< canonical SQL signature of the interpretation
};

/// RESP payload: u8 quality | u32 count | count × (f64 score | u32 len | sql).
struct AnswerReply {
  uint8_t quality = 0;  ///< numeric ResultQuality of the slowest stage
  std::vector<AnswerWire> answers;
};
std::string EncodeAnswerReply(const AnswerReply& reply);
StatusOr<AnswerReply> DecodeAnswerReply(const std::string& payload);

/// ERRR / RTRY payload: u16 status code | f64 retry_after_ms | u32 len |
/// message. retry_after_ms is meaningful for RTRY and zero in ERRR.
struct ErrorReply {
  uint16_t code = 0;  ///< numeric km::StatusCode
  double retry_after_ms = 0;
  std::string message;
};
std::string EncodeErrorReply(const ErrorReply& reply);
StatusOr<ErrorReply> DecodeErrorReply(const std::string& payload);

/// HELO payload: u32 len | tenant id (also used for the server's echo).
std::string EncodeHello(const std::string& tenant);
StatusOr<std::string> DecodeHello(const std::string& payload);

/// Maps a serving-side Status to the ERRR/RTRY split: kOverloaded and
/// kUnavailable become RTRY frames carrying the parsed retry-after hint
/// (common/retry.h), everything else becomes ERRR.
Frame ErrorFrameFor(uint64_t request_id, const Status& status);

/// Rebuilds a Status from a decoded ERRR/RTRY payload (client side).
Status StatusFromErrorReply(const ErrorReply& reply);

}  // namespace km::net

#endif  // KM_NET_PROTOCOL_H_
