// NetClient: a small blocking client for the keymantic wire protocol —
// used by the CLI, the e14 open-loop load generator, and the tests.
//
// The client is deliberately thin: framing and payload codecs live in
// net/protocol.h; this class owns one socket fd, a send path, and a
// decode-ahead read path. Send and read are independent, so an open-loop
// driver can pace SendQuery() from one thread while a second thread drains
// ReadFrame() — the two paths never touch the same state (the decoder
// belongs to the reader; writes go straight to the fd). One sender and one
// reader at a time; neither path is internally locked.

#ifndef KM_NET_CLIENT_H_
#define KM_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/protocol.h"

namespace km::net {

class NetClient {
 public:
  /// Connects to a dotted-quad IPv4 host ("127.0.0.1") and port.
  static StatusOr<std::unique_ptr<NetClient>> Connect(const std::string& host,
                                                      uint16_t port);

  /// Adopts an already-connected fd (e.g. one end of a socketpair).
  explicit NetClient(int fd);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  void Close();
  int fd() const { return fd_; }

  /// Binds the connection to a tenant: sends HELO and waits for the echo.
  /// A server-side rejection (unknown tenant) comes back as its typed
  /// Status.
  Status Hello(const std::string& tenant, double timeout_ms = 5000);

  /// Fire-and-forget query send (open-loop mode pairs it with a reader
  /// thread calling ReadFrame).
  Status SendQuery(uint64_t request_id, const std::string& text, uint32_t k,
                   double deadline_ms);

  Status SendFrame(const Frame& frame);

  /// Raw bytes straight to the socket — the scripted-client seam for
  /// partial frames and split writes (tests/net_harness.h).
  Status SendBytes(const void* data, size_t size);

  /// Next complete frame from the server. kDeadlineExceeded on timeout,
  /// kUnavailable on a clean disconnect (EOF), kProtocolError if the
  /// server's stream is malformed.
  StatusOr<Frame> ReadFrame(double timeout_ms = 5000);

  /// Closed-loop convenience: SendQuery + read frames until the reply with
  /// `request_id` arrives, decoded into a Status/answers pair. RTRY/ERRR
  /// replies surface as their typed Status.
  StatusOr<AnswerReply> Ask(uint64_t request_id, const std::string& text,
                            uint32_t k, double deadline_ms,
                            double timeout_ms = 30000);

 private:
  int fd_;
  FrameDecoder decoder_;
};

}  // namespace km::net

#endif  // KM_NET_CLIENT_H_
