// NetClient: a small blocking client for the keymantic wire protocol —
// used by the CLI, the e14 open-loop load generator, and the tests.
//
// The client is deliberately thin: framing and payload codecs live in
// net/protocol.h; this class owns one socket fd, a send path, and a
// decode-ahead read path. Send and read are independent, so an open-loop
// driver can pace SendQuery() from one thread while a second thread drains
// ReadFrame() — the two paths never touch the same state (the decoder
// belongs to the reader; writes go straight to the fd). One sender and one
// reader at a time; neither path is internally locked.
//
// AskWithRetry is the resilient closed-loop path: it wires the retry
// governance from common/retry.h (attempt caps, process-wide retry budget,
// decorrelated-jitter backoff) into the wire protocol. RTRY frames'
// retry-after hints floor the backoff; a lost connection (ECONNRESET, EOF,
// a draining server's GBYE) triggers reconnect + re-HELO when the client
// was made with Connect(); responses are deduped by request_id so a reply
// that raced a retry is dropped, not misdelivered. AskWithRetry shares the
// single-sender/single-reader contract: it is a closed-loop call, not for
// concurrent use with the open-loop paths.

#ifndef KM_NET_CLIENT_H_
#define KM_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>

#include "common/retry.h"
#include "net/protocol.h"

namespace km::net {

class NetClient {
 public:
  /// Connects to a dotted-quad IPv4 host ("127.0.0.1") and port. The
  /// returned client remembers the endpoint, so AskWithRetry can
  /// reconnect after a reset.
  static StatusOr<std::unique_ptr<NetClient>> Connect(const std::string& host,
                                                      uint16_t port);

  /// Adopts an already-connected fd (e.g. one end of a socketpair). Not
  /// reconnectable: there is no endpoint to dial again.
  explicit NetClient(int fd);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  void Close();
  int fd() const { return fd_; }

  /// Binds the connection to a tenant: sends HELO and waits for the echo.
  /// A server-side rejection (unknown tenant) comes back as its typed
  /// Status. The tenant is remembered for re-HELO after a reconnect.
  Status Hello(const std::string& tenant, double timeout_ms = 5000);

  /// Fire-and-forget query send (open-loop mode pairs it with a reader
  /// thread calling ReadFrame).
  Status SendQuery(uint64_t request_id, const std::string& text, uint32_t k,
                   double deadline_ms);

  Status SendFrame(const Frame& frame);

  /// Raw bytes straight to the socket — the scripted-client seam for
  /// partial frames and split writes (tests/net_harness.h).
  Status SendBytes(const void* data, size_t size);

  /// Next complete frame from the server. kDeadlineExceeded on timeout,
  /// kUnavailable on a clean disconnect (EOF), kProtocolError if the
  /// server's stream is malformed. `timeout_ms` bounds the *total* wait
  /// across partial reads; sub-millisecond timeouts are rounded up to the
  /// 1 ms poll(2) granularity rather than busy-polling.
  StatusOr<Frame> ReadFrame(double timeout_ms = 5000);

  /// Closed-loop convenience: SendQuery + read frames until the reply with
  /// `request_id` arrives, decoded into a Status/answers pair. RTRY/ERRR
  /// replies surface as their typed Status. Duplicate terminal frames for
  /// already-answered request_ids are dropped (and counted).
  StatusOr<AnswerReply> Ask(uint64_t request_id, const std::string& text,
                            uint32_t k, double deadline_ms,
                            double timeout_ms = 30000);

  /// Ask with retry governance: retries transient failures (RTRY with its
  /// retry-after hint flooring the decorrelated-jitter backoff, EOF/reset
  /// with reconnect + re-HELO) under `policy`'s attempt cap and budget.
  /// Non-retryable statuses and exhausted budgets surface as-is.
  StatusOr<AnswerReply> AskWithRetry(RetryPolicy& policy, uint64_t request_id,
                                     const std::string& text, uint32_t k,
                                     double deadline_ms,
                                     double timeout_ms = 30000);

  /// Drops the current socket and dials the remembered endpoint again,
  /// re-sending HELO when a tenant was bound. Fails on adopted-fd clients.
  Status Reconnect(double timeout_ms = 5000);

  /// Seam for tests: replaces the real backoff sleep (milliseconds).
  void set_sleep_fn(std::function<void(double)> sleep_fn) {
    sleep_fn_ = std::move(sleep_fn);
  }

  uint64_t reconnects() const { return reconnects_; }
  uint64_t duplicates_dropped() const { return duplicates_dropped_; }

 private:
  /// Remembers that `request_id` got its terminal frame, so a duplicate
  /// (from a retry racing the original) is recognized and dropped.
  void RecordCompleted(uint64_t request_id);
  /// Sleeps the schedule's next delay (floored by the status's retry-after
  /// hint) through the injectable sleep seam.
  void Backoff(RetrySchedule& schedule, const Status& status);
  bool AlreadyCompleted(uint64_t request_id) const {
    return completed_set_.count(request_id) != 0;
  }

  int fd_;
  FrameDecoder decoder_;
  bool reconnectable_ = false;
  std::string host_;
  uint16_t port_ = 0;
  std::string tenant_;  ///< bound by Hello; re-sent after Reconnect
  uint64_t reconnects_ = 0;
  uint64_t duplicates_dropped_ = 0;
  std::deque<uint64_t> completed_order_;
  std::unordered_set<uint64_t> completed_set_;
  std::function<void(double)> sleep_fn_;
};

}  // namespace km::net

#endif  // KM_NET_CLIENT_H_
