// NetServer: the process's network front end — a small poll(2)-based TCP
// server speaking the length-prefixed protocol (net/protocol.h), routing
// queries to tenants through a TenantRegistry (serve/tenant.h).
//
// Architecture: one event-loop thread owns every connection (sockets are
// non-blocking; poll multiplexes). Engine work never runs on the loop —
// QURY frames are submitted to the tenant's EngineServer and the returned
// futures are polled with wait_for(0) each loop turn, so a slow query on
// one connection cannot stall another connection's frames. Admission
// decisions (shed, retry-after, refusal) surface to the client as RTRY
// frames; everything else hard-fails as ERRR.
//
// Connection lifecycle:
//   accept/adopt → HELO binds a tenant → QURY*/RESP*/RTRY*/ERRR* → GBYE.
// Any protocol violation gets a best-effort ERRR(kProtocolError) and a
// close: once framing is lost the stream cannot be trusted.
//
// Server lifecycle: kAccepting → kDraining → kClosed. Drain(deadline_ms)
// stops accepting, answers new QURY frames with RTRY + retry-after for the
// remaining drain window, lets in-flight queries finish, flushes every
// outbox, says GBYE, and closes. Connections that cannot be flushed by the
// deadline are evicted rather than wedging the drain.
//
// Hostile-peer defenses (all deterministic under the injectable clock):
//   * bounded per-connection write buffer — once a connection's outbox
//     reaches max_write_buffer_bytes (or max_pending_per_connection replies
//     are in flight) the loop stops reading from it (read-side
//     backpressure), so a slow reader cannot grow server memory;
//   * slow-client eviction — a peer whose outbox makes no write progress
//     for write_stall_timeout_ms is closed (km.net.evicted_slow);
//   * pre-HELO half-open connections get the stricter hello_timeout_ms
//     instead of the general idle_timeout_ms, so an attacker cannot hold
//     max_connections slots open cheaply.
//
// Tests drive the server deterministically through two seams:
//   * AdoptConnection(fd) — an in-process socketpair end enters the loop
//     exactly like an accepted socket (no ports, no listeners);
//   * an injectable clock — idle/hello/stall/drain-deadline decisions read
//     `now_ms`, so a scripted test advances time without sleeping.

#ifndef KM_NET_SERVER_H_
#define KM_NET_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/protocol.h"
#include "serve/tenant.h"

namespace km::net {

struct NetServerOptions {
  /// TCP port to listen on (loopback only); 0 picks an ephemeral port —
  /// read it back with port() after Start().
  uint16_t port = 0;
  /// When false, no listening socket is created: connections enter only
  /// via AdoptConnection (the deterministic test mode).
  bool listen = true;
  int backlog = 64;
  /// Accepted connections beyond this are closed immediately (connection-
  /// level load shedding; counted in rejected_capacity).
  size_t max_connections = 64;
  /// Per-frame payload cap handed to each connection's FrameDecoder.
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// poll() timeout while responses are in flight (the future-poll cadence)
  /// and while fully idle, respectively.
  double busy_poll_ms = 2.0;
  double idle_poll_ms = 50.0;
  /// Connections silent for longer than this are closed; 0 disables. Read
  /// off the injectable clock, so tests can step it.
  double idle_timeout_ms = 0;
  /// Half-open window: a connection that has not completed HELO within this
  /// many ms is closed (counted in hello_timeouts), independently of
  /// idle_timeout_ms. 0 falls back to the general idle timeout.
  double hello_timeout_ms = 10'000;
  /// Cap on the k a client may request in one QURY.
  uint32_t max_k = 50;
  /// Per-connection outbox high-water mark. While a connection's buffered
  /// output is at or above this, the loop stops reading from it and stops
  /// harvesting further replies into its outbox — a slow reader holds only
  /// bounded server memory. A single frame larger than the cap is still
  /// sent (alone) so progress is always possible.
  size_t max_write_buffer_bytes = 1 << 20;
  /// Cap on replies in flight per connection (submitted QURYs whose
  /// responses have not yet been flushed). Frame processing pauses at the
  /// cap; bytes queue in the kernel/decoder instead of as engine work.
  size_t max_pending_per_connection = 32;
  /// A connection whose non-empty outbox makes no write progress for this
  /// many ms is evicted (km.net.evicted_slow). 0 disables.
  double write_stall_timeout_ms = 0;
  /// When > 0, applied as SO_SNDBUF to every accepted/adopted socket. Test
  /// and bench seam: a tiny kernel send buffer makes write-side
  /// backpressure reachable without megabytes of traffic.
  int so_sndbuf = 0;
};

/// Where the server is in its life. Start() enters kAccepting; Drain()
/// moves through kDraining to kClosed; Shutdown() jumps straight to
/// kClosed.
enum class ServerLifecycle : uint8_t {
  kAccepting = 0,
  kDraining = 1,
  kClosed = 2,
};

/// Counters snapshot (one consistent read; see also the km.net.* metrics).
struct NetServerStats {
  uint64_t accepted = 0;
  uint64_t adopted = 0;
  uint64_t disconnects = 0;       ///< connections closed, any reason
  uint64_t protocol_errors = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t queries = 0;           ///< QURY frames routed to a tenant
  uint64_t replies = 0;           ///< terminal frames enqueued for routed QURYs
  uint64_t queries_dropped = 0;   ///< routed QURYs whose conn died unanswered
  uint64_t rejected_capacity = 0; ///< closed at accept: max_connections
  uint64_t rejected_unknown_tenant = 0;
  uint64_t idle_timeouts = 0;
  uint64_t hello_timeouts = 0;    ///< closed half-open before HELO
  uint64_t evicted_slow = 0;      ///< closed: outbox stalled past timeout
  uint64_t accept_failures = 0;   ///< accept(2) errors (incl. injected)
  uint64_t write_errors = 0;      ///< fatal write(2) errors (incl. injected)
  uint64_t drain_rtry = 0;        ///< QURY/HELO answered RTRY during a drain
  size_t outbox_high_water = 0;   ///< max bytes ever buffered on one conn
  size_t open_connections = 0;
  ServerLifecycle lifecycle = ServerLifecycle::kAccepting;
};

/// Outcome of one Drain() call.
struct DrainReport {
  bool completed = false;   ///< every connection closed before the deadline
  uint64_t evicted = 0;     ///< connections force-closed at the deadline
  double elapsed_ms = 0;    ///< wall time the drain took (injected clock)
};

/// The front end. The registry must outlive the server. Start() spawns the
/// loop thread; Shutdown() (or destruction) closes every connection and
/// joins it.
class NetServer {
 public:
  /// `now_ms` is the clock idle/hello/stall/drain decisions are measured
  /// on; the default reads the monotonic clock.
  explicit NetServer(TenantRegistry& tenants, NetServerOptions options = {},
                     std::function<double()> now_ms = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds/listens (when options.listen) and spawns the loop thread.
  Status Start() KM_EXCLUDES(mu_);

  /// Graceful wind-down: stop accepting, answer new QURYs with RTRY +
  /// retry-after, finish in-flight queries, flush every outbox, send GBYE,
  /// close. Blocks until every connection is gone or `deadline_ms` (on the
  /// injected clock) has passed — stragglers are then evicted. The loop
  /// thread exits; call Shutdown() afterwards to release the fds. Fails if
  /// the server is not running or a drain already ran.
  Status Drain(double deadline_ms, DrainReport* report = nullptr)
      KM_EXCLUDES(mu_);

  /// Stops the loop, closes every connection (and the listener), joins.
  /// Idempotent.
  void Shutdown() KM_EXCLUDES(mu_);

  /// The bound port (0 before Start() or when not listening).
  uint16_t port() const KM_EXCLUDES(mu_);

  /// Hands an already-connected socket (e.g. one end of a socketpair) to
  /// the loop. The server takes ownership of `fd` — including on error
  /// (a draining or stopped server refuses and closes it).
  Status AdoptConnection(int fd) KM_EXCLUDES(mu_);

  NetServerStats Stats() const KM_EXCLUDES(mu_);
  ServerLifecycle lifecycle() const KM_EXCLUDES(mu_);

 private:
  struct Conn;  // defined in server.cc; owned by the loop thread

  void LoopThread();
  /// One poll + dispatch turn. Returns false when the loop should exit
  /// (shutdown requested, or a drain finished/hit its deadline).
  bool LoopTurn(std::vector<std::unique_ptr<Conn>>& conns, int listen_fd);
  void HandleReadable(Conn& conn);
  /// Decoded-frame pump: dispatches frames already buffered in the decoder
  /// until the connection hits its backpressure watermarks.
  void ProcessDecodedFrames(Conn& conn);
  void HandleFrame(Conn& conn, Frame frame);
  void PollPending(Conn& conn);
  void FlushWrites(Conn& conn);
  void SendFrame(Conn& conn, const Frame& frame);
  /// True while the loop must not read more frames from this connection
  /// (outbox at high water or too many replies in flight).
  bool ReadPaused(const Conn& conn) const;
  /// Appends encoded bytes to the outbox with progress-clock bookkeeping.
  void AppendToOutbox(Conn& conn, const std::string& wire);
  /// Best-effort ERRR(kProtocolError) + close: the connection's framing is
  /// no longer trustworthy.
  void ProtocolErrorClose(Conn& conn, uint64_t request_id, const Status& why);
  /// Accounts a dying connection's unanswered routed queries.
  void DropPending(Conn& conn) KM_EXCLUDES(mu_);
  double Now() const;

  TenantRegistry& tenants_;
  const NetServerOptions options_;
  const std::function<double()> now_ms_;

  mutable Mutex mu_;
  bool started_ KM_GUARDED_BY(mu_) = false;
  bool stop_ KM_GUARDED_BY(mu_) = false;
  uint16_t bound_port_ KM_GUARDED_BY(mu_) = 0;
  std::vector<int> adopt_queue_ KM_GUARDED_BY(mu_);
  NetServerStats stats_ KM_GUARDED_BY(mu_);
  ServerLifecycle lifecycle_ KM_GUARDED_BY(mu_) = ServerLifecycle::kAccepting;
  double drain_deadline_ms_ KM_GUARDED_BY(mu_) = 0;
  bool drain_requested_ KM_GUARDED_BY(mu_) = false;
  uint64_t drain_evicted_ KM_GUARDED_BY(mu_) = 0;
  bool drain_completed_ KM_GUARDED_BY(mu_) = false;
  CondVar lifecycle_cv_;

  // Loop-thread-local mirror of the drain state (refreshed every turn, so
  // HandleFrame can answer RTRY without taking mu_ per frame).
  bool loop_draining_ = false;
  double loop_drain_deadline_ms_ = 0;

  int listen_fd_ = -1;     ///< owned; loop reads it, Start writes it once
  int wake_read_fd_ = -1;  ///< pipe the loop polls for adopt/shutdown nudges
  int wake_write_fd_ = -1;
  std::thread loop_;
};

}  // namespace km::net

#endif  // KM_NET_SERVER_H_
