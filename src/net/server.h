// NetServer: the process's network front end — a small poll(2)-based TCP
// server speaking the length-prefixed protocol (net/protocol.h), routing
// queries to tenants through a TenantRegistry (serve/tenant.h).
//
// Architecture: one event-loop thread owns every connection (sockets are
// non-blocking; poll multiplexes). Engine work never runs on the loop —
// QURY frames are submitted to the tenant's EngineServer and the returned
// futures are polled with wait_for(0) each loop turn, so a slow query on
// one connection cannot stall another connection's frames. Admission
// decisions (shed, retry-after, refusal) surface to the client as RTRY
// frames; everything else hard-fails as ERRR.
//
// Connection lifecycle:
//   accept/adopt → HELO binds a tenant → QURY*/RESP*/RTRY*/ERRR* → GBYE.
// Any protocol violation gets a best-effort ERRR(kProtocolError) and a
// close: once framing is lost the stream cannot be trusted.
//
// Tests drive the server deterministically through two seams:
//   * AdoptConnection(fd) — an in-process socketpair end enters the loop
//     exactly like an accepted socket (no ports, no listeners);
//   * an injectable clock — idle-timeout decisions read `now_ms`, so a
//     scripted test advances time without sleeping.

#ifndef KM_NET_SERVER_H_
#define KM_NET_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/protocol.h"
#include "serve/tenant.h"

namespace km::net {

struct NetServerOptions {
  /// TCP port to listen on (loopback only); 0 picks an ephemeral port —
  /// read it back with port() after Start().
  uint16_t port = 0;
  /// When false, no listening socket is created: connections enter only
  /// via AdoptConnection (the deterministic test mode).
  bool listen = true;
  int backlog = 64;
  /// Accepted connections beyond this are closed immediately (connection-
  /// level load shedding; counted in rejected_capacity).
  size_t max_connections = 64;
  /// Per-frame payload cap handed to each connection's FrameDecoder.
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// poll() timeout while responses are in flight (the future-poll cadence)
  /// and while fully idle, respectively.
  double busy_poll_ms = 2.0;
  double idle_poll_ms = 50.0;
  /// Connections silent for longer than this are closed; 0 disables. Read
  /// off the injectable clock, so tests can step it.
  double idle_timeout_ms = 0;
  /// Cap on the k a client may request in one QURY.
  uint32_t max_k = 50;
};

/// Counters snapshot (one consistent read; see also the km.net.* metrics).
struct NetServerStats {
  uint64_t accepted = 0;
  uint64_t adopted = 0;
  uint64_t disconnects = 0;       ///< connections closed, any reason
  uint64_t protocol_errors = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t queries = 0;           ///< QURY frames routed to a tenant
  uint64_t rejected_capacity = 0; ///< closed at accept: max_connections
  uint64_t rejected_unknown_tenant = 0;
  uint64_t idle_timeouts = 0;
  size_t open_connections = 0;
};

/// The front end. The registry must outlive the server. Start() spawns the
/// loop thread; Shutdown() (or destruction) closes every connection and
/// joins it.
class NetServer {
 public:
  /// `now_ms` is the clock idle timeouts are measured on; the default reads
  /// the monotonic clock.
  explicit NetServer(TenantRegistry& tenants, NetServerOptions options = {},
                     std::function<double()> now_ms = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds/listens (when options.listen) and spawns the loop thread.
  Status Start() KM_EXCLUDES(mu_);

  /// Stops the loop, closes every connection (and the listener), joins.
  /// Idempotent.
  void Shutdown() KM_EXCLUDES(mu_);

  /// The bound port (0 before Start() or when not listening).
  uint16_t port() const KM_EXCLUDES(mu_);

  /// Hands an already-connected socket (e.g. one end of a socketpair) to
  /// the loop. The server takes ownership of `fd` — including on error.
  Status AdoptConnection(int fd) KM_EXCLUDES(mu_);

  NetServerStats Stats() const KM_EXCLUDES(mu_);

 private:
  struct Conn;  // defined in server.cc; owned by the loop thread

  void LoopThread();
  /// One poll + dispatch turn. Returns false when shutdown was requested.
  bool LoopTurn(std::vector<std::unique_ptr<Conn>>& conns, int listen_fd);
  void HandleReadable(Conn& conn);
  void HandleFrame(Conn& conn, Frame frame);
  void PollPending(Conn& conn);
  void FlushWrites(Conn& conn);
  void SendFrame(Conn& conn, const Frame& frame);
  /// Best-effort ERRR(kProtocolError) + close: the connection's framing is
  /// no longer trustworthy.
  void ProtocolErrorClose(Conn& conn, uint64_t request_id, const Status& why);
  double Now() const;

  TenantRegistry& tenants_;
  const NetServerOptions options_;
  const std::function<double()> now_ms_;

  mutable Mutex mu_;
  bool started_ KM_GUARDED_BY(mu_) = false;
  bool stop_ KM_GUARDED_BY(mu_) = false;
  uint16_t bound_port_ KM_GUARDED_BY(mu_) = 0;
  std::vector<int> adopt_queue_ KM_GUARDED_BY(mu_);
  NetServerStats stats_ KM_GUARDED_BY(mu_);

  int listen_fd_ = -1;     ///< owned; loop reads it, Start writes it once
  int wake_read_fd_ = -1;  ///< pipe the loop polls for adopt/shutdown nudges
  int wake_write_fd_ = -1;
  std::thread loop_;
};

}  // namespace km::net

#endif  // KM_NET_SERVER_H_
