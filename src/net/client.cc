#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/metrics.h"
#include "common/strings.h"

namespace km::net {

namespace {

constexpr size_t kCompletedIdWindow = 256;

/// Connection-level errno values come back as kUnavailable — the retryable
/// "the peer/medium failed" class — everything else stays kInternal.
Status ErrnoStatus(const char* what) {
  const int err = errno;
  const std::string message = StrFormat("%s: %s", what, std::strerror(err));
  switch (err) {
    case ECONNRESET:
    case ECONNABORTED:
    case ECONNREFUSED:
    case EPIPE:
    case ENOTCONN:
    case ETIMEDOUT:
      return Status::Unavailable(message);
    default:
      return Status::Internal(message);
  }
}

StatusOr<int> DialIPv4(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("host must be a dotted-quad IPv4 address");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status failed = ErrnoStatus("connect");
    ::close(fd);
    return failed;
  }
  return fd;
}

}  // namespace

StatusOr<std::unique_ptr<NetClient>> NetClient::Connect(
    const std::string& host, uint16_t port) {
  KM_ASSIGN_OR_RETURN(const int fd, DialIPv4(host, port));
  auto client = std::make_unique<NetClient>(fd);
  client->reconnectable_ = true;
  client->host_ = host;
  client->port_ = port;
  return client;
}

NetClient::NetClient(int fd) : fd_(fd) {}

NetClient::~NetClient() { Close(); }

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status NetClient::Reconnect(double timeout_ms) {
  if (!reconnectable_) {
    return Status::FailedPrecondition(
        "adopted-fd client has no endpoint to reconnect to");
  }
  Close();
  KM_ASSIGN_OR_RETURN(const int fd, DialIPv4(host_, port_));
  fd_ = fd;
  decoder_ = FrameDecoder();  // the old stream's framing state is gone
  ++reconnects_;
  MetricsRegistry::Default()
      .CounterRef("km.net.client.reconnects")
      .Increment();
  if (!tenant_.empty()) {
    const std::string tenant = tenant_;
    KM_RETURN_IF_ERROR(Hello(tenant, timeout_ms));
  }
  return Status::OK();
}

Status NetClient::SendBytes(const void* data, size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a server that hung up mid-send must surface as EPIPE
    // (mapped to kUnavailable), not kill the process with SIGPIPE.
    const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return ErrnoStatus("write");
  }
  return Status::OK();
}

Status NetClient::SendFrame(const Frame& frame) {
  const std::string wire = EncodeFrame(frame);
  return SendBytes(wire.data(), wire.size());
}

Status NetClient::SendQuery(uint64_t request_id, const std::string& text,
                            uint32_t k, double deadline_ms) {
  QueryRequest request;
  request.k = k;
  request.deadline_ms = deadline_ms;
  request.text = text;
  return SendFrame(
      MakeFrame("QURY", request_id, EncodeQueryRequest(request)));
}

StatusOr<Frame> NetClient::ReadFrame(double timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  // `timeout_ms` bounds the whole call: partial reads do not reset it.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(std::max(0.0, timeout_ms)));
  while (true) {
    // A frame may already be buffered from an earlier read.
    Frame frame;
    KM_ASSIGN_OR_RETURN(bool got, decoder_.Next(&frame));
    if (got) return frame;

    int poll_ms = 0;
    if (timeout_ms > 0) {
      const double remaining_ms =
          std::chrono::duration<double, std::milli>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining_ms <= 0) {
        return Status::DeadlineExceeded("timed out waiting for a frame");
      }
      // Round *up*: a sub-millisecond timeout must still block for poll's
      // 1 ms granularity — truncation would busy-poll at 100% CPU.
      poll_ms = static_cast<int>(
          std::ceil(std::min(remaining_ms, 2.0e9)));
      poll_ms = std::max(poll_ms, 1);
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, poll_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (ready == 0) {
      if (timeout_ms <= 0) {
        return Status::DeadlineExceeded("timed out waiting for a frame");
      }
      continue;  // the deadline check at the top of the loop decides
    }
    char buf[4096];
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      KM_RETURN_IF_ERROR(decoder_.Feed(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("read");
  }
}

Status NetClient::Hello(const std::string& tenant, double timeout_ms) {
  KM_RETURN_IF_ERROR(SendFrame(MakeFrame("HELO", 0, EncodeHello(tenant))));
  KM_ASSIGN_OR_RETURN(Frame reply, ReadFrame(timeout_ms));
  if (FrameIs(reply, "HELO")) {
    tenant_ = tenant;
    return Status::OK();
  }
  if (FrameIs(reply, "ERRR") || FrameIs(reply, "RTRY")) {
    KM_ASSIGN_OR_RETURN(ErrorReply error, DecodeErrorReply(reply.payload));
    return StatusFromErrorReply(error);
  }
  return Status::ProtocolError("unexpected reply to HELO: " + reply.type);
}

void NetClient::RecordCompleted(uint64_t request_id) {
  if (!completed_set_.insert(request_id).second) return;
  completed_order_.push_back(request_id);
  while (completed_order_.size() > kCompletedIdWindow) {
    completed_set_.erase(completed_order_.front());
    completed_order_.pop_front();
  }
}

StatusOr<AnswerReply> NetClient::Ask(uint64_t request_id,
                                     const std::string& text, uint32_t k,
                                     double deadline_ms, double timeout_ms) {
  KM_RETURN_IF_ERROR(SendQuery(request_id, text, k, deadline_ms));
  while (true) {
    KM_ASSIGN_OR_RETURN(Frame reply, ReadFrame(timeout_ms));
    if (reply.request_id != request_id) {
      // A stale reply for an id we already answered is the fingerprint of
      // a retry racing its original — count the dedupe.
      if (AlreadyCompleted(reply.request_id) &&
          (FrameIs(reply, "RESP") || FrameIs(reply, "ERRR") ||
           FrameIs(reply, "RTRY"))) {
        ++duplicates_dropped_;
        MetricsRegistry::Default()
            .CounterRef("km.net.client.duplicates_dropped")
            .Increment();
      }
      continue;
    }
    if (FrameIs(reply, "RESP")) {
      RecordCompleted(request_id);
      return DecodeAnswerReply(reply.payload);
    }
    if (FrameIs(reply, "ERRR") || FrameIs(reply, "RTRY")) {
      RecordCompleted(request_id);
      KM_ASSIGN_OR_RETURN(ErrorReply error, DecodeErrorReply(reply.payload));
      return StatusFromErrorReply(error);
    }
    if (FrameIs(reply, "GBYE")) {
      // The server is draining us out from under the request.
      return Status::Unavailable("server said goodbye mid-request");
    }
    return Status::ProtocolError("unexpected reply to QURY: " + reply.type);
  }
}

StatusOr<AnswerReply> NetClient::AskWithRetry(RetryPolicy& policy,
                                              uint64_t request_id,
                                              const std::string& text,
                                              uint32_t k, double deadline_ms,
                                              double timeout_ms) {
  policy.OnRequest();
  RetrySchedule schedule = policy.MakeSchedule(request_id);
  int attempts = 0;
  while (true) {
    ++attempts;
    if (fd_ < 0) {
      const Status redial = Reconnect(timeout_ms);
      if (!redial.ok()) {
        if (!IsRetryableStatus(redial) ||
            !policy.ShouldRetry(redial, attempts)) {
          return redial;
        }
        Backoff(schedule, redial);
        continue;
      }
    }
    StatusOr<AnswerReply> got = Ask(request_id, text, k, deadline_ms,
                                    timeout_ms);
    if (got.ok()) return got;
    const Status& status = got.status();
    if (!IsRetryableStatus(status) || !policy.ShouldRetry(status, attempts)) {
      return status;
    }
    Backoff(schedule, status);
    // A server-side RTRY always carries a retry-after hint and leaves the
    // stream healthy; a hint-less kUnavailable is the connection itself
    // failing (EOF, reset, GBYE) — drop it so the next attempt redials.
    if (SuggestedRetryAfterMs(status) <= 0) Close();
  }
}

void NetClient::Backoff(RetrySchedule& schedule, const Status& status) {
  const double delay_ms = schedule.NextBackoffMs(SuggestedRetryAfterMs(status));
  if (sleep_fn_) {
    sleep_fn_(delay_ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      delay_ms));
}

}  // namespace km::net
