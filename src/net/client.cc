#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace km::net {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

StatusOr<std::unique_ptr<NetClient>> NetClient::Connect(
    const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("host must be a dotted-quad IPv4 address");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status failed = ErrnoStatus("connect");
    ::close(fd);
    return failed;
  }
  return std::make_unique<NetClient>(fd);
}

NetClient::NetClient(int fd) : fd_(fd) {}

NetClient::~NetClient() { Close(); }

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status NetClient::SendBytes(const void* data, size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = write(fd_, p + sent, size - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return ErrnoStatus("write");
  }
  return Status::OK();
}

Status NetClient::SendFrame(const Frame& frame) {
  const std::string wire = EncodeFrame(frame);
  return SendBytes(wire.data(), wire.size());
}

Status NetClient::SendQuery(uint64_t request_id, const std::string& text,
                            uint32_t k, double deadline_ms) {
  QueryRequest request;
  request.k = k;
  request.deadline_ms = deadline_ms;
  request.text = text;
  return SendFrame(
      MakeFrame("QURY", request_id, EncodeQueryRequest(request)));
}

StatusOr<Frame> NetClient::ReadFrame(double timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  while (true) {
    // A frame may already be buffered from an earlier read.
    Frame frame;
    KM_ASSIGN_OR_RETURN(bool got, decoder_.Next(&frame));
    if (got) return frame;

    pollfd pfd{fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (ready == 0) {
      return Status::DeadlineExceeded("timed out waiting for a frame");
    }
    char buf[4096];
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      KM_RETURN_IF_ERROR(decoder_.Feed(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("read");
  }
}

Status NetClient::Hello(const std::string& tenant, double timeout_ms) {
  KM_RETURN_IF_ERROR(SendFrame(MakeFrame("HELO", 0, EncodeHello(tenant))));
  KM_ASSIGN_OR_RETURN(Frame reply, ReadFrame(timeout_ms));
  if (FrameIs(reply, "HELO")) return Status::OK();
  if (FrameIs(reply, "ERRR") || FrameIs(reply, "RTRY")) {
    KM_ASSIGN_OR_RETURN(ErrorReply error, DecodeErrorReply(reply.payload));
    return StatusFromErrorReply(error);
  }
  return Status::ProtocolError("unexpected reply to HELO: " + reply.type);
}

StatusOr<AnswerReply> NetClient::Ask(uint64_t request_id,
                                     const std::string& text, uint32_t k,
                                     double deadline_ms, double timeout_ms) {
  KM_RETURN_IF_ERROR(SendQuery(request_id, text, k, deadline_ms));
  while (true) {
    KM_ASSIGN_OR_RETURN(Frame reply, ReadFrame(timeout_ms));
    if (reply.request_id != request_id) continue;  // stale earlier reply
    if (FrameIs(reply, "RESP")) return DecodeAnswerReply(reply.payload);
    if (FrameIs(reply, "ERRR") || FrameIs(reply, "RTRY")) {
      KM_ASSIGN_OR_RETURN(ErrorReply error, DecodeErrorReply(reply.payload));
      return StatusFromErrorReply(error);
    }
    return Status::ProtocolError("unexpected reply to QURY: " + reply.type);
  }
}

}  // namespace km::net
