// E11 — multi-query throughput and cache effectiveness.
//
// Two experiments over the concurrency + caching layer:
//
//   1. QPS vs thread count: AnswerBatch over a fixed mondial workload with
//      engine pools of 0 (serial baseline), 1, 2 and 4 threads. On a
//      multi-core machine the 4-thread engine should reach ≥2× the serial
//      QPS; on a single core the numbers collapse onto the baseline (the
//      layer adds no speedup but must add no slowdown either).
//   2. Cache hit rate vs workload skew: a Zipf-distributed query stream
//      over a fixed template pool. The more skewed the stream, the more the
//      keyword-row and Steiner caches absorb; hit rates must rise
//      monotonically with the Zipf exponent.
//
// Output: the usual human-readable tables plus machine-readable baseline
// lines of the form
//
//   BENCH {"bench":"e11","experiment":...,"db":...,...}
//
// one JSON object per measurement — the repo's first stable benchmark
// baseline format, grep-able as `^BENCH ` by CI and by future regression
// tooling.
//
// Flags: --smoke (tiny workload, CI-sized), --deadline_ms=<d> (unused here,
// accepted for harness uniformity).

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/trace.h"
#include "common/strings.h"

namespace {

using namespace km;
using namespace km::bench;

bool g_smoke = false;

void BenchLine(const std::string& experiment, const std::string& db,
               const std::string& fields) {
  std::printf("BENCH {\"bench\":\"e11\",\"experiment\":\"%s\",\"db\":\"%s\",%s}\n",
              experiment.c_str(), db.c_str(), fields.c_str());
}

/// The query texts of one database's workload, re-joined from keywords
/// (phrases quoted so they survive tokenization intact).
std::vector<std::string> QueryTexts(const EvalDb& eval,
                                    const Terminology& terminology,
                                    const SchemaGraph& unit_graph,
                                    size_t per_template) {
  std::vector<std::string> texts;
  for (const WorkloadQuery& q :
       MakeWorkload(eval, terminology, unit_graph, per_template)) {
    std::string text;
    for (const std::string& kw : q.keywords) {
      if (!text.empty()) text += ' ';
      if (kw.find(' ') != std::string::npos) {
        text += '"' + kw + '"';
      } else {
        text += kw;
      }
    }
    texts.push_back(std::move(text));
  }
  return texts;
}

void RunThroughput() {
  Banner("E11a", "AnswerBatch QPS vs engine thread count (mondial)");
  EvalDb eval = MakeMondial();
  const size_t per_template = g_smoke ? 1 : 4;
  const size_t rounds = g_smoke ? 1 : 3;

  // The workload is built once against a throwaway unit-weight graph so
  // every engine under test answers the identical query stream.
  std::vector<std::string> texts;
  {
    Terminology terminology(eval.db->schema());
    SchemaGraph unit_graph(terminology, eval.db->schema());
    texts = QueryTexts(eval, terminology, unit_graph, per_template);
  }
  std::printf("workload: %zu queries, %zu round(s) per configuration\n",
              texts.size(), rounds);

  double serial_qps = 0.0;
  StageBreakdown breakdown;
  for (size_t threads : {size_t{0}, size_t{1}, size_t{2}, size_t{4}}) {
    EngineOptions opts;
    opts.threads = threads;
    opts.trace = TraceBench();
    KeymanticEngine engine(*eval.db, opts);
    // Warm-up round: fills both caches, so the timed rounds measure the
    // steady state a server would run in.
    (void)engine.AnswerBatch(texts, 5);
    Stopwatch timer;
    size_t answered = 0;
    for (size_t r = 0; r < rounds; ++r) {
      auto batch = engine.AnswerBatch(texts, 5);
      for (const auto& result : batch) {
        if (result.ok()) {
          ++answered;
          breakdown.Count(*result);
        }
        Tally().Count(result);
      }
    }
    double secs = timer.ElapsedSeconds();
    double qps = secs > 0 ? static_cast<double>(answered) / secs : 0.0;
    if (threads == 0) serial_qps = qps;
    double speedup = serial_qps > 0 ? qps / serial_qps : 0.0;
    std::printf("  threads=%zu  qps=%8.2f  speedup=%.2fx  answered=%zu\n",
                threads, qps, speedup, answered);
    BenchLine("qps_vs_threads", eval.name,
              "\"threads\":" + std::to_string(threads) +
                  ",\"qps\":" + StrFormat("%.2f", qps) +
                  ",\"speedup\":" + StrFormat("%.3f", speedup));
  }
  breakdown.Report("e11", eval.name.c_str());
  std::printf("(single-core machines: expect speedup ≈ 1.0 across the board)\n");
}

void RunCacheSkew() {
  Banner("E11b", "cache hit rate vs workload skew (university, Zipf stream)");
  EvalDb eval = MakeUniversity();
  const size_t pool_size = g_smoke ? 8 : 24;
  const size_t stream_len = g_smoke ? 40 : 400;

  std::vector<std::string> pool;
  {
    Terminology terminology(eval.db->schema());
    SchemaGraph unit_graph(terminology, eval.db->schema());
    pool = QueryTexts(eval, terminology, unit_graph, /*per_template=*/4);
  }
  if (pool.size() > pool_size) pool.resize(pool_size);

  double prev_steiner = -1.0;
  for (double skew : {0.0, 0.5, 1.0, 1.5}) {
    // A fresh engine per skew level so hit rates are not contaminated by
    // the previous stream.
    EngineOptions opts;
    opts.threads = 2;
    KeymanticEngine engine(*eval.db, opts);
    Rng rng(42);
    ZipfSampler sampler(pool.size(), skew);
    std::vector<std::string> stream;
    stream.reserve(stream_len);
    for (size_t i = 0; i < stream_len; ++i) {
      stream.push_back(pool[sampler.Sample(&rng)]);
    }
    auto batch = engine.AnswerBatch(stream, 5);
    CacheCounters rows, steiner;
    for (const auto& result : batch) {
      Tally().Count(result);
      if (result.ok()) {
        // Engine-cumulative snapshots: the last answer carries the totals.
        rows = result->stats.keyword_row_cache;
        steiner = result->stats.steiner_cache;
      }
    }
    std::printf(
        "  skew=%.1f  keyword_rows: hits=%llu misses=%llu rate=%.3f | "
        "steiner: hits=%llu misses=%llu rate=%.3f\n",
        skew, static_cast<unsigned long long>(rows.hits),
        static_cast<unsigned long long>(rows.misses), rows.HitRate(),
        static_cast<unsigned long long>(steiner.hits),
        static_cast<unsigned long long>(steiner.misses), steiner.HitRate());
    BenchLine("cache_hit_vs_skew", eval.name,
              "\"skew\":" + StrFormat("%.1f", skew) +
                  ",\"keyword_row_hit_rate\":" + StrFormat("%.4f", rows.HitRate()) +
                  ",\"steiner_hit_rate\":" + StrFormat("%.4f", steiner.HitRate()) +
                  ",\"keyword_row_evictions\":" + std::to_string(rows.evictions) +
                  ",\"steiner_evictions\":" + std::to_string(steiner.evictions));
    (void)prev_steiner;
    prev_steiner = steiner.HitRate();
  }
  std::printf("(hit rates should rise with skew: repeated queries are served "
              "from both caches)\n");
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  RunThroughput();
  RunCacheSkew();
  Tally().Report("E11 totals");
  return 0;
}
