// E9 — the no-instance-access (deep web) scenario.
//
// The paper's core claim: keyword queries can be answered from metadata
// alone. This harness compares three access levels on identical workloads:
//   full-access    — instance vocabulary + MI edge weights (upper bound),
//   metadata-only  — no instance reads at all: shape recognizers, string
//                    similarity, thesaurus, uniform graph weights,
//   no-patterns    — metadata-only with the recognizers also disabled
//                    (what is left without the paper's contribution).
// Reports configuration and end-to-end accuracy. Expected shape: a gap
// between full access and metadata-only, but metadata-only remains far
// above the stripped variant.

#include "bench/bench_common.h"

namespace {

km::EngineOptions FullAccess() { return {}; }

km::EngineOptions MetadataOnly() {
  km::EngineOptions o;
  o.weights.use_instance_vocabulary = false;
  o.use_mi_weights = false;
  o.build_phrase_vocabulary = false;
  return o;
}

km::EngineOptions NoPatterns() {
  km::EngineOptions o = MetadataOnly();
  o.weights.use_domain_patterns = false;
  return o;
}

}  // namespace

int main() {
  using namespace km;
  using namespace km::bench;

  Banner("E9", "no-instance-access scenario (metadata-only matching)");
  const std::vector<size_t> ks = {1, 3, 10};

  const struct {
    const char* name;
    EngineOptions (*make)();
  } kLevels[] = {
      {"full-access", FullAccess},
      {"metadata-only", MetadataOnly},
      {"no-patterns", NoPatterns},
  };

  for (EvalDb& eval : MakeAllDbs()) {
    std::printf("\n[%s]\n", eval.name.c_str());
    Terminology terminology(eval.db->schema());
    SchemaGraph unit_graph(terminology, eval.db->schema());
    auto workload = MakeWorkload(eval, terminology, unit_graph, 10);

    for (const auto& level : kLevels) {
      EngineOptions opts = level.make();
      opts.use_mi_weights = false;  // comparable gold-tree signatures
      KeymanticEngine engine(*eval.db, opts);
      TopKAccuracy config_acc, sql_acc;
      for (const WorkloadQuery& q : workload) {
        auto configs = engine.Configurations(q.keywords, 10);
        config_acc.Add(configs.ok() ? RankOfConfiguration(*configs, q.gold_config)
                                    : -1);
        auto results = engine.SearchKeywords(q.keywords, 10);
        sql_acc.Add(results.ok() ? RankOfExplanation(*results, q.gold_sql_signature)
                                 : -1);
      }
      std::printf("%s   [configs]\n",
                  FormatAccuracyRow(level.name, config_acc, ks).c_str());
      std::printf("%s   [sql]\n", FormatAccuracyRow("", sql_acc, ks).c_str());
    }
  }
  std::printf("\n(expect full-access > metadata-only >> no-patterns)\n");
  return 0;
}
