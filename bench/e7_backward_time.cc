// E7 — backward-step latency: top-k Steiner trees vs number of terminals
// and k (google-benchmark).
//
// Reproduces the "time required for computing the interpretations" figure.
// Expected shape: exponential in the number of terminals (the 3^l term of
// DPBF), roughly linear in k, and heavier on mondial (dense FK fabric)
// than on dblp (flat schema).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "graph/summary.h"

namespace {

using namespace km;
using namespace km::bench;

struct Fixture {
  EvalDb eval;
  std::unique_ptr<Terminology> terminology;
  std::unique_ptr<SchemaGraph> graph;
  std::vector<size_t> domain_terms;
};

Fixture* GetFixture(int which) {
  static Fixture* kFixtures[2] = {nullptr, nullptr};
  if (kFixtures[which] == nullptr) {
    auto* f = new Fixture{which == 0 ? MakeMondial() : MakeDblp(), nullptr, nullptr, {}};
    f->terminology = std::make_unique<Terminology>(f->eval.db->schema());
    f->graph = std::make_unique<SchemaGraph>(*f->terminology, f->eval.db->schema());
    for (size_t i = 0; i < f->terminology->size(); ++i) {
      if (f->terminology->term(i).kind == TermKind::kDomain) {
        f->domain_terms.push_back(i);
      }
    }
    kFixtures[which] = f;
  }
  return kFixtures[which];
}

void BM_SteinerTrees(benchmark::State& state) {
  Fixture* f = GetFixture(static_cast<int>(state.range(0)));
  const size_t terminals = static_cast<size_t>(state.range(1));
  const size_t k = static_cast<size_t>(state.range(2));
  Rng rng(23);
  std::vector<std::vector<size_t>> terminal_sets;
  for (int i = 0; i < 16; ++i) {
    std::vector<size_t> pool = f->domain_terms;
    rng.Shuffle(&pool);
    pool.resize(terminals);
    terminal_sets.push_back(std::move(pool));
  }
  SteinerOptions opts;
  opts.k = k;
  size_t ti = 0;
  for (auto _ : state) {
    auto trees = TopKSteinerTrees(*f->graph, terminal_sets[ti], opts);
    benchmark::DoNotOptimize(trees);
    ti = (ti + 1) % terminal_sets.size();
  }
  state.SetLabel(f->eval.name);
}

void BM_ShortestPathBaseline(benchmark::State& state) {
  Fixture* f = GetFixture(static_cast<int>(state.range(0)));
  const size_t terminals = static_cast<size_t>(state.range(1));
  Rng rng(29);
  std::vector<size_t> pool = f->domain_terms;
  rng.Shuffle(&pool);
  pool.resize(terminals);
  for (auto _ : state) {
    auto trees = ShortestPathTrees(*f->graph, pool, 10);
    benchmark::DoNotOptimize(trees);
  }
  state.SetLabel(f->eval.name);
}


void BM_SummaryTrees(benchmark::State& state) {
  Fixture* f = GetFixture(static_cast<int>(state.range(0)));
  const size_t terminals = static_cast<size_t>(state.range(1));
  const size_t k = static_cast<size_t>(state.range(2));
  static SummaryGraph* summaries[2] = {nullptr, nullptr};
  int which = static_cast<int>(state.range(0));
  if (summaries[which] == nullptr) summaries[which] = new SummaryGraph(*f->graph);
  Rng rng(23);
  std::vector<std::vector<size_t>> terminal_sets;
  for (int i = 0; i < 16; ++i) {
    std::vector<size_t> pool = f->domain_terms;
    rng.Shuffle(&pool);
    pool.resize(terminals);
    terminal_sets.push_back(std::move(pool));
  }
  SteinerOptions opts;
  opts.k = k;
  size_t ti = 0;
  for (auto _ : state) {
    auto trees = summaries[which]->TopKTrees(terminal_sets[ti], opts);
    benchmark::DoNotOptimize(trees);
    ti = (ti + 1) % terminal_sets.size();
  }
  state.SetLabel(f->eval.name);
}

}  // namespace

BENCHMARK(BM_SteinerTrees)
    ->ArgNames({"db", "terminals", "k"})
    ->Args({0, 2, 10})
    ->Args({0, 3, 10})
    ->Args({0, 4, 10})
    ->Args({0, 5, 10})
    ->Args({1, 2, 10})
    ->Args({1, 3, 10})
    ->Args({1, 4, 10})
    ->Args({1, 5, 10})
    ->Args({0, 3, 1})
    ->Args({0, 3, 50})
    ->Args({1, 3, 1})
    ->Args({1, 3, 50})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ShortestPathBaseline)
    ->ArgNames({"db", "terminals"})
    ->Args({0, 3})
    ->Args({0, 5})
    ->Args({1, 3})
    ->Args({1, 5})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SummaryTrees)
    ->ArgNames({"db", "terminals", "k"})
    ->Args({0, 3, 10})
    ->Args({0, 5, 10})
    ->Args({1, 3, 10})
    ->Args({1, 5, 10})
    ->Args({0, 3, 50})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
