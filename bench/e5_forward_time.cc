// E5 — forward-step latency vs number of keywords and k (google-benchmark).
//
// Reproduces the "time for computing the configurations" figure: time to
// produce the top-k configurations for queries of 1..5 keywords on each
// database. Expected shape: roughly linear growth in the number of
// keywords and in k; dblp slower than mondial/university because its
// instance-backed value index is larger.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/rng.h"

namespace {

using namespace km;
using namespace km::bench;

struct Fixture {
  EvalDb eval;
  std::unique_ptr<KeymanticEngine> engine;
  // A pool of realistic keywords: schema words and instance values.
  std::vector<std::string> keyword_pool;
};

Fixture MakeFixture(EvalDb eval) {
  Fixture f{std::move(eval), nullptr, {}};
  f.engine = std::make_unique<KeymanticEngine>(*f.eval.db);
  Rng rng(99);
  // Schema words.
  for (const RelationSchema& r : f.eval.db->schema().relations()) {
    f.keyword_pool.push_back(r.name());
    for (const AttributeDef& a : r.attributes()) f.keyword_pool.push_back(a.name);
  }
  // Instance values (bounded).
  for (const RelationSchema& r : f.eval.db->schema().relations()) {
    const Table* t = f.eval.db->FindTable(r.name());
    if (t == nullptr || t->empty()) continue;
    for (size_t a = 0; a < r.arity() && f.keyword_pool.size() < 4000; ++a) {
      for (int i = 0; i < 3; ++i) {
        const Row& row = t->rows()[rng.Uniform(t->size())];
        if (row[a].is_null()) continue;
        std::string v = row[a].ToString();
        if (!v.empty()) f.keyword_pool.push_back(std::move(v));
      }
    }
  }
  return f;
}

Fixture* GetFixture(int db_index) {
  static Fixture* kFixtures[3] = {nullptr, nullptr, nullptr};
  if (kFixtures[db_index] == nullptr) {
    switch (db_index) {
      case 0: kFixtures[0] = new Fixture(MakeFixture(MakeUniversity())); break;
      case 1: kFixtures[1] = new Fixture(MakeFixture(MakeMondial())); break;
      default: kFixtures[2] = new Fixture(MakeFixture(MakeDblp())); break;
    }
  }
  return kFixtures[db_index];
}

void BM_ForwardStep(benchmark::State& state) {
  Fixture* f = GetFixture(static_cast<int>(state.range(0)));
  const size_t num_keywords = static_cast<size_t>(state.range(1));
  const size_t k = static_cast<size_t>(state.range(2));
  Rng rng(7);
  // Pre-draw query batches so drawing is outside the timed region.
  std::vector<std::vector<std::string>> queries;
  for (int i = 0; i < 32; ++i) {
    std::vector<std::string> kws;
    for (size_t j = 0; j < num_keywords; ++j) {
      kws.push_back(rng.Pick(f->keyword_pool));
    }
    queries.push_back(std::move(kws));
  }
  size_t qi = 0;
  for (auto _ : state) {
    if (DeadlineMs() > 0) {
      // Budget-pressure mode: run the full pipeline under a per-query
      // deadline and tally how often it degrades instead of completing.
      QueryLimits limits;
      limits.deadline_ms = DeadlineMs();
      QueryContext ctx(limits);
      auto result = f->engine->AnswerKeywords(queries[qi], k, &ctx);
      Tally().Count(result);
      benchmark::DoNotOptimize(result);
    } else {
      auto configs = f->engine->Configurations(queries[qi], k);
      benchmark::DoNotOptimize(configs);
    }
    qi = (qi + 1) % queries.size();
  }
  state.SetLabel(f->eval.name);
}

}  // namespace

BENCHMARK(BM_ForwardStep)
    ->ArgNames({"db", "keywords", "k"})
    ->Args({0, 1, 10})
    ->Args({0, 2, 10})
    ->Args({0, 3, 10})
    ->Args({0, 5, 10})
    ->Args({1, 1, 10})
    ->Args({1, 2, 10})
    ->Args({1, 3, 10})
    ->Args({1, 5, 10})
    ->Args({2, 1, 10})
    ->Args({2, 2, 10})
    ->Args({2, 3, 10})
    ->Args({2, 5, 10})
    ->Args({1, 3, 1})
    ->Args({1, 3, 100})
    ->Args({2, 3, 1})
    ->Args({2, 3, 100})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  km::bench::ParseBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  km::bench::Tally().Report("E5 budget pressure");
  return 0;
}
