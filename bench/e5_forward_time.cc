// E5 — forward-step latency vs number of keywords and k (google-benchmark).
//
// Reproduces the "time for computing the configurations" figure: time to
// produce the top-k configurations for queries of 1..5 keywords on each
// database. Expected shape: roughly linear growth in the number of
// keywords and in k; dblp slower than mondial/university because its
// instance-backed value index is larger.

// Flags: --smoke runs the CI-sized kernel comparison instead of the
// google-benchmark sweep: the pruned batched SW kernel vs the all-pairs
// scalar baseline on a ~10k-term synthetic terminology, emitting
// machine-readable BENCH rows (and cross-checking bit-identical output).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "datasets/scaling.h"
#include "metadata/weights.h"

namespace {

using namespace km;
using namespace km::bench;

bool g_smoke = false;

struct Fixture {
  EvalDb eval;
  std::unique_ptr<KeymanticEngine> engine;
  // A pool of realistic keywords: schema words and instance values.
  std::vector<std::string> keyword_pool;
};

Fixture MakeFixture(EvalDb eval) {
  Fixture f{std::move(eval), nullptr, {}};
  f.engine = std::make_unique<KeymanticEngine>(*f.eval.db);
  Rng rng(99);
  // Schema words.
  for (const RelationSchema& r : f.eval.db->schema().relations()) {
    f.keyword_pool.push_back(r.name());
    for (const AttributeDef& a : r.attributes()) f.keyword_pool.push_back(a.name);
  }
  // Instance values (bounded).
  for (const RelationSchema& r : f.eval.db->schema().relations()) {
    const Table* t = f.eval.db->FindTable(r.name());
    if (t == nullptr || t->empty()) continue;
    for (size_t a = 0; a < r.arity() && f.keyword_pool.size() < 4000; ++a) {
      for (int i = 0; i < 3; ++i) {
        const Row& row = t->rows()[rng.Uniform(t->size())];
        if (row[a].is_null()) continue;
        std::string v = row[a].ToString();
        if (!v.empty()) f.keyword_pool.push_back(std::move(v));
      }
    }
  }
  return f;
}

Fixture* GetFixture(int db_index) {
  static Fixture* kFixtures[3] = {nullptr, nullptr, nullptr};
  if (kFixtures[db_index] == nullptr) {
    switch (db_index) {
      case 0: kFixtures[0] = new Fixture(MakeFixture(MakeUniversity())); break;
      case 1: kFixtures[1] = new Fixture(MakeFixture(MakeMondial())); break;
      default: kFixtures[2] = new Fixture(MakeFixture(MakeDblp())); break;
    }
  }
  return kFixtures[db_index];
}

void BM_ForwardStep(benchmark::State& state) {
  Fixture* f = GetFixture(static_cast<int>(state.range(0)));
  const size_t num_keywords = static_cast<size_t>(state.range(1));
  const size_t k = static_cast<size_t>(state.range(2));
  Rng rng(7);
  // Pre-draw query batches so drawing is outside the timed region.
  std::vector<std::vector<std::string>> queries;
  for (int i = 0; i < 32; ++i) {
    std::vector<std::string> kws;
    for (size_t j = 0; j < num_keywords; ++j) {
      kws.push_back(rng.Pick(f->keyword_pool));
    }
    queries.push_back(std::move(kws));
  }
  size_t qi = 0;
  for (auto _ : state) {
    if (DeadlineMs() > 0) {
      // Budget-pressure mode: run the full pipeline under a per-query
      // deadline and tally how often it degrades instead of completing.
      QueryLimits limits;
      limits.deadline_ms = DeadlineMs();
      QueryContext ctx(limits);
      auto result = f->engine->AnswerKeywords(queries[qi], k, &ctx);
      Tally().Count(result);
      benchmark::DoNotOptimize(result);
    } else {
      auto configs = f->engine->Configurations(queries[qi], k);
      benchmark::DoNotOptimize(configs);
    }
    qi = (qi + 1) % queries.size();
  }
  state.SetLabel(f->eval.name);
}

// CI-sized comparison of the pruned batched SW kernel against the
// all-pairs scalar baseline on a ~10k-term synthetic terminology
// (910 relations × 5 attributes → 910 · (1 + 2·5) = 10,010 terms). The
// build is schema-only (no instance index), so the measured work is
// exactly the forward SW scan the kernel targets.
int RunKernelSmoke() {
  Banner("E5-smoke", "pruned batched SW kernel vs all-pairs scalar baseline");
  ScalingOptions sopts;
  sopts.num_relations = 910;
  sopts.attributes_per_relation = 5;
  sopts.rows_per_relation = 2;  // schema-scaling: instance is irrelevant
  auto db = BuildScalingDatabase(sopts);
  if (!db.ok()) {
    std::fprintf(stderr, "scaling build failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  Terminology terminology(db->schema());
  auto index = TermPruneIndex::Build(terminology);

  // Realistic keyword mix: exact attribute names, typo'd variants,
  // multi-word keywords and garbage (worst case for pruning).
  Rng rng(17);
  std::vector<std::string> keywords;
  std::vector<std::string> attr_names;
  for (const RelationSchema& r : db->schema().relations()) {
    for (const AttributeDef& a : r.attributes()) attr_names.push_back(a.name);
  }
  for (int i = 0; i < 3; ++i) keywords.push_back(rng.Pick(attr_names));
  for (int i = 0; i < 2; ++i) {
    std::string typo = rng.Pick(attr_names);
    if (typo.size() > 2) typo.erase(typo.size() / 2, 1);
    keywords.push_back(std::move(typo));
  }
  keywords.push_back(rng.Pick(attr_names) + " " + rng.Pick(attr_names));
  keywords.push_back("zzqx");
  keywords.push_back("value");

  WeightOptions scalar_opts;
  scalar_opts.use_prune_index = false;
  scalar_opts.keyword_row_cache_capacity = 0;
  WeightMatrixBuilder scalar(terminology, static_cast<const Database*>(nullptr), scalar_opts);

  WeightOptions pruned_opts;
  pruned_opts.keyword_row_cache_capacity = 0;
  WeightMatrixBuilder pruned(terminology, static_cast<const Database*>(nullptr), pruned_opts);
  pruned.SetPruneIndex(index);
  if (!pruned.UsesPrunedKernel()) {
    std::fprintf(stderr, "pruned kernel unexpectedly inactive\n");
    return 1;
  }

  auto time_builds = [&keywords](const WeightMatrixBuilder& b, int reps,
                                 Matrix* last) {
    double best_ms = 0.0;
    for (int i = 0; i < reps; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      *last = b.Build(keywords);
      auto t1 = std::chrono::steady_clock::now();
      double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (i == 0 || ms < best_ms) best_ms = ms;
    }
    return best_ms;
  };

  Matrix scalar_m, pruned_m;
  const int kReps = 5;
  double scalar_ms = time_builds(scalar, kReps, &scalar_m);
  double pruned_ms = time_builds(pruned, kReps, &pruned_m);

  // The comparison is only meaningful if the outputs agree bit-for-bit.
  size_t mismatches = 0;
  for (size_t r = 0; r < scalar_m.rows(); ++r) {
    for (size_t c = 0; c < scalar_m.cols(); ++c) {
      double x = scalar_m(r, c), y = pruned_m(r, c);
      if (std::memcmp(&x, &y, sizeof(double)) != 0) ++mismatches;
    }
  }
  double speedup = pruned_ms > 0.0 ? scalar_ms / pruned_ms : 0.0;
  auto row = [&](const char* mode, double ms) {
    std::printf(
        "BENCH {\"bench\":\"e5\",\"experiment\":\"forward_kernel\","
        "\"mode\":\"%s\",\"terms\":%zu,\"keywords\":%zu,\"reps\":%d,"
        "\"best_ms\":%.3f}\n",
        mode, terminology.size(), keywords.size(), kReps, ms);
  };
  row("scalar_all_pairs", scalar_ms);
  row("pruned_batched", pruned_ms);
  std::printf(
      "BENCH {\"bench\":\"e5\",\"experiment\":\"forward_kernel_speedup\","
      "\"terms\":%zu,\"speedup\":%.2f,\"cell_mismatches\":%zu}\n",
      terminology.size(), speedup, mismatches);
  std::printf("pruned kernel: %.1fms -> %.1fms (%.1fx), %zu mismatching cells\n",
              scalar_ms, pruned_ms, speedup, mismatches);
  if (mismatches != 0) return 1;
  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "WARNING: speedup %.2fx below the 5x acceptance target\n",
                 speedup);
  }
  return 0;
}

}  // namespace

BENCHMARK(BM_ForwardStep)
    ->ArgNames({"db", "keywords", "k"})
    ->Args({0, 1, 10})
    ->Args({0, 2, 10})
    ->Args({0, 3, 10})
    ->Args({0, 5, 10})
    ->Args({1, 1, 10})
    ->Args({1, 2, 10})
    ->Args({1, 3, 10})
    ->Args({1, 5, 10})
    ->Args({2, 1, 10})
    ->Args({2, 2, 10})
    ->Args({2, 3, 10})
    ->Args({2, 5, 10})
    ->Args({1, 3, 1})
    ->Args({1, 3, 100})
    ->Args({2, 3, 1})
    ->Args({2, 3, 100})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  km::bench::ParseBenchFlags(&argc, argv);
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (g_smoke) return RunKernelSmoke();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  km::bench::Tally().Report("E5 budget pressure");
  return 0;
}
