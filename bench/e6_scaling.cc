// E6 — forward-step latency vs terminology size (google-benchmark).
//
// Reproduces the "matching time as the schema grows" figure: synthetic
// chain-plus-chords schemas sweep |T(D)| over more than an order of
// magnitude. Expected shape: superlinear (assignment is cubic-ish in the
// matrix dimension) but tractable well past the size of real schemas.

// Flags: --smoke emits the CI-sized candidate-set diagnostics of the
// pruned SW kernel instead of the google-benchmark sweep: per terminology
// size, how many names survive the lossless upper-bound prune (candidate
// fraction), how many word pairs are scored exactly, and the advisory
// SimHash nearest-word distances.

#include <benchmark/benchmark.h>

#include <cstring>
#include <map>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "datasets/scaling.h"
#include "metadata/weights.h"
#include "text/similarity_batch.h"

namespace {

using namespace km;
using namespace km::bench;

bool g_smoke = false;

struct Fixture {
  std::unique_ptr<Database> db;
  std::unique_ptr<KeymanticEngine> engine;
  std::vector<std::string> keyword_pool;
  size_t terminology_size;
};

Fixture* GetFixture(size_t num_relations) {
  static std::map<size_t, Fixture*>* kCache = new std::map<size_t, Fixture*>();
  auto it = kCache->find(num_relations);
  if (it != kCache->end()) return it->second;

  ScalingOptions opts;
  opts.num_relations = num_relations;
  opts.attributes_per_relation = 5;
  auto db = BuildScalingDatabase(opts);
  if (!db.ok()) std::abort();
  auto* f = new Fixture();
  f->db = std::make_unique<Database>(std::move(*db));
  f->terminology_size = f->db->schema().TerminologySize();
  EngineOptions eopts;
  eopts.use_mi_weights = false;  // isolate matching cost
  f->engine = std::make_unique<KeymanticEngine>(*f->db, eopts);
  Rng rng(3);
  for (const RelationSchema& r : f->db->schema().relations()) {
    for (const AttributeDef& a : r.attributes()) f->keyword_pool.push_back(a.name);
    const Table* t = f->db->FindTable(r.name());
    if (t != nullptr && !t->empty()) {
      const Row& row = t->rows()[rng.Uniform(t->size())];
      for (const Value& v : row) {
        if (v.is_null()) continue;
        std::string s = v.ToString();
        if (!s.empty()) f->keyword_pool.push_back(std::move(s));
      }
    }
  }
  (*kCache)[num_relations] = f;
  return f;
}

void BM_ForwardVsTerminology(benchmark::State& state) {
  Fixture* f = GetFixture(static_cast<size_t>(state.range(0)));
  Rng rng(11);
  std::vector<std::vector<std::string>> queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back(
        {rng.Pick(f->keyword_pool), rng.Pick(f->keyword_pool), rng.Pick(f->keyword_pool)});
  }
  size_t qi = 0;
  for (auto _ : state) {
    if (DeadlineMs() > 0) {
      // Budget-pressure mode: the acceptance bar is that even on the
      // largest schema every query still yields a ranked (possibly
      // degraded) answer — never an abort, never an empty result.
      QueryLimits limits;
      limits.deadline_ms = DeadlineMs();
      QueryContext ctx(limits);
      auto result = f->engine->AnswerKeywords(queries[qi], 10, &ctx);
      Tally().Count(result);
      benchmark::DoNotOptimize(result);
    } else {
      auto configs = f->engine->Configurations(queries[qi], 10);
      benchmark::DoNotOptimize(configs);
    }
    qi = (qi + 1) % queries.size();
  }
  state.SetLabel("terms=" + std::to_string(f->terminology_size));
}

// Candidate-set size distribution of the pruned kernel across terminology
// sizes, plus SimHash nearest-word diagnostics (advisory channel only —
// the prune itself never consults signatures).
int RunCandidateSmoke() {
  Banner("E6-smoke", "candidate-set distribution of the pruned SW kernel");
  WeightOptions defaults;
  for (size_t relations : {40, 160, 910}) {
    ScalingOptions sopts;
    sopts.num_relations = relations;
    sopts.attributes_per_relation = 5;
    sopts.rows_per_relation = 2;
    auto db = BuildScalingDatabase(sopts);
    if (!db.ok()) {
      std::fprintf(stderr, "scaling build failed: %s\n",
                   db.status().ToString().c_str());
      return 1;
    }
    Terminology terminology(db->schema());
    TermPruneIndex index(terminology);
    // The same per-entry floors the weight builder uses: qualified
    // entries enter the SW score scaled by 0.9, so their floor is higher.
    std::vector<double> floors(index.names.name_count());
    for (size_t e = 0; e < floors.size(); ++e) {
      floors[e] = index.entry_qualified[e] ? defaults.sw_floor / 0.9
                                           : defaults.sw_floor;
    }

    Rng rng(23 + relations);
    std::vector<std::string> attr_names;
    for (const RelationSchema& r : db->schema().relations()) {
      for (const AttributeDef& a : r.attributes()) {
        attr_names.push_back(a.name);
      }
    }
    NameMatchStats stats;
    std::vector<double> scores;
    int hamming_total = 0, hamming_samples = 0;
    const int kQueries = 16;
    for (int q = 0; q < kQueries; ++q) {
      std::string kw = rng.Pick(attr_names);
      switch (q % 4) {
        case 0: break;                                  // exact name
        case 1: if (kw.size() > 2) kw.erase(kw.size() / 2, 1); break;  // typo
        case 2: kw += " " + rng.Pick(attr_names); break;  // multi-word
        default: kw = "zq" + kw; break;                   // near-garbage
      }
      index.names.Match(kw, floors, &scores, nullptr, &stats);
      auto nearest = index.names.ApproxNearestWords(kw, 1);
      if (!nearest.empty()) {
        hamming_total += SimHashHamming(
            NameMatchIndex::Signature(kw),
            NameMatchIndex::Signature(index.names.vocab_word(nearest[0])));
        ++hamming_samples;
      }
    }
    double total = static_cast<double>(stats.candidates + stats.pruned);
    std::printf(
        "BENCH {\"bench\":\"e6\",\"experiment\":\"candidate_distribution\","
        "\"terms\":%zu,\"names\":%zu,\"vocab\":%zu,\"queries\":%d,"
        "\"candidate_fraction\":%.4f,\"pruned_fraction\":%.4f,"
        "\"word_pairs_per_query\":%.1f}\n",
        terminology.size(), index.names.name_count(), index.names.vocab_size(),
        kQueries, total > 0 ? stats.candidates / total : 0.0,
        total > 0 ? stats.pruned / total : 0.0,
        static_cast<double>(stats.word_pairs_scored) / kQueries);
    std::printf(
        "BENCH {\"bench\":\"e6\",\"experiment\":\"simhash_nearest\","
        "\"terms\":%zu,\"mean_hamming\":%.1f,\"samples\":%d}\n",
        terminology.size(),
        hamming_samples > 0
            ? static_cast<double>(hamming_total) / hamming_samples
            : 0.0,
        hamming_samples);
  }
  return 0;
}

}  // namespace

BENCHMARK(BM_ForwardVsTerminology)
    ->ArgNames({"relations"})
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(80)
    ->Arg(160)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  km::bench::ParseBenchFlags(&argc, argv);
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (g_smoke) return RunCandidateSmoke();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  km::bench::Tally().Report("E6 budget pressure");
  return 0;
}
