// E6 — forward-step latency vs terminology size (google-benchmark).
//
// Reproduces the "matching time as the schema grows" figure: synthetic
// chain-plus-chords schemas sweep |T(D)| over more than an order of
// magnitude. Expected shape: superlinear (assignment is cubic-ish in the
// matrix dimension) but tractable well past the size of real schemas.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "datasets/scaling.h"

namespace {

using namespace km;
using namespace km::bench;

struct Fixture {
  std::unique_ptr<Database> db;
  std::unique_ptr<KeymanticEngine> engine;
  std::vector<std::string> keyword_pool;
  size_t terminology_size;
};

Fixture* GetFixture(size_t num_relations) {
  static std::map<size_t, Fixture*>* kCache = new std::map<size_t, Fixture*>();
  auto it = kCache->find(num_relations);
  if (it != kCache->end()) return it->second;

  ScalingOptions opts;
  opts.num_relations = num_relations;
  opts.attributes_per_relation = 5;
  auto db = BuildScalingDatabase(opts);
  if (!db.ok()) std::abort();
  auto* f = new Fixture();
  f->db = std::make_unique<Database>(std::move(*db));
  f->terminology_size = f->db->schema().TerminologySize();
  EngineOptions eopts;
  eopts.use_mi_weights = false;  // isolate matching cost
  f->engine = std::make_unique<KeymanticEngine>(*f->db, eopts);
  Rng rng(3);
  for (const RelationSchema& r : f->db->schema().relations()) {
    for (const AttributeDef& a : r.attributes()) f->keyword_pool.push_back(a.name);
    const Table* t = f->db->FindTable(r.name());
    if (t != nullptr && !t->empty()) {
      const Row& row = t->rows()[rng.Uniform(t->size())];
      for (const Value& v : row) {
        if (v.is_null()) continue;
        std::string s = v.ToString();
        if (!s.empty()) f->keyword_pool.push_back(std::move(s));
      }
    }
  }
  (*kCache)[num_relations] = f;
  return f;
}

void BM_ForwardVsTerminology(benchmark::State& state) {
  Fixture* f = GetFixture(static_cast<size_t>(state.range(0)));
  Rng rng(11);
  std::vector<std::vector<std::string>> queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back(
        {rng.Pick(f->keyword_pool), rng.Pick(f->keyword_pool), rng.Pick(f->keyword_pool)});
  }
  size_t qi = 0;
  for (auto _ : state) {
    if (DeadlineMs() > 0) {
      // Budget-pressure mode: the acceptance bar is that even on the
      // largest schema every query still yields a ranked (possibly
      // degraded) answer — never an abort, never an empty result.
      QueryLimits limits;
      limits.deadline_ms = DeadlineMs();
      QueryContext ctx(limits);
      auto result = f->engine->AnswerKeywords(queries[qi], 10, &ctx);
      Tally().Count(result);
      benchmark::DoNotOptimize(result);
    } else {
      auto configs = f->engine->Configurations(queries[qi], 10);
      benchmark::DoNotOptimize(configs);
    }
    qi = (qi + 1) % queries.size();
  }
  state.SetLabel("terms=" + std::to_string(f->terminology_size));
}

}  // namespace

BENCHMARK(BM_ForwardVsTerminology)
    ->ArgNames({"relations"})
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(80)
    ->Arg(160)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  km::bench::ParseBenchFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  km::bench::Tally().Report("E6 budget pressure");
  return 0;
}
