// E10 — rank-combination study: DST confidence sweep.
//
// Sweeps the forward-confidence parameter of the Dempster–Shafer
// combination (backward confidence = 1 − forward) and compares against the
// linear combination at the same settings. Reproduces the paper-family
// observation (Table 1 of the supplied text's running example) that the
// relative confidence placed on the two steps changes the final ranking.
// Expected shape: an interior optimum — neither extreme (pure forward,
// pure backward) dominates.

#include "bench/bench_common.h"
#include "common/strings.h"

int main() {
  using namespace km;
  using namespace km::bench;

  Banner("E10", "rank combination: DST vs linear across confidence settings");
  const std::vector<size_t> ks = {1, 3, 10};
  const double kConfidences[] = {0.1, 0.3, 0.5, 0.7, 0.9};

  std::vector<EvalDb> dbs;
  dbs.push_back(MakeUniversity());
  dbs.push_back(MakeMondial());

  for (EvalDb& eval : dbs) {
    std::printf("\n[%s]\n", eval.name.c_str());
    Terminology terminology(eval.db->schema());
    SchemaGraph unit_graph(terminology, eval.db->schema());
    auto workload = MakeWorkload(eval, terminology, unit_graph, 8);

    for (CombineMode mode : {CombineMode::kDst, CombineMode::kLinear}) {
      const char* mode_name = mode == CombineMode::kDst ? "dst" : "linear";
      for (double conf : kConfidences) {
        EngineOptions opts;
        opts.combine_mode = mode;
        opts.conf_forward = conf;
        opts.use_mi_weights = false;
        KeymanticEngine engine(*eval.db, opts);
        TopKAccuracy acc;
        for (const WorkloadQuery& q : workload) {
          auto results = engine.SearchKeywords(q.keywords, 10);
          acc.Add(results.ok() ? RankOfExplanation(*results, q.gold_sql_signature)
                               : -1);
        }
        std::string label = std::string(mode_name) + " conf_fw=" +
                            StrFormat("%.1f", conf);
        std::printf("%s\n", FormatAccuracyRow(label, acc, ks).c_str());
      }
    }
  }
  std::printf("\n(expect low forward confidence to lose badly and accuracy to\n"
              " plateau once the forward evidence dominates; DST ≈ linear at\n"
              " the plateau)\n");
  return 0;
}
