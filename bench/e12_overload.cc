// E12 — overload protection: load shedding, tail latency under saturation,
// retry-budget anti-amplification, and the executor circuit breaker.
//
// Three experiments over the serving layer (src/serve/):
//
//   1. Shedding under 2× saturation (mondial): an unloaded calibration pass
//      measures the baseline p99, then a closed-loop submitter pool offers
//      roughly twice the sustainable load against a bounded admission
//      queue with per-request deadlines derived from the baseline. The
//      server must shed (shed rate > 0), keep the queue at its cap, and
//      keep the p99 of *admitted* (completed) requests within 2× of the
//      unloaded p99 — overload costs rejected requests, not collapsed
//      latency for accepted ones.
//
//   2. Retry budget: with every request failing retryably (a simulated
//      outage), total retries stay below budget_cap + ratio·requests, so
//      the offered-load amplification factor stays ≈ (1 + ratio) instead
//      of max_attempts×.
//
//   3. Breaker trip/recover cycle (university, needs KM_FAILPOINTS=ON):
//      a failing backend trips the breaker during result probing, probing
//      stops (failpoint hit count goes flat) while the circuit is open,
//      and after the backend heals and the cooldown elapses the circuit
//      closes and probing resumes.
//
// Output: human-readable tables plus `BENCH {"bench":"e12",...}` baseline
// lines, and explicit `CHECK` lines; any violated check makes the binary
// exit non-zero so CI soak jobs fail loudly.
//
// Flags: --smoke (CI-sized), --deadline_ms (accepted for uniformity).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/failpoint.h"
#include "common/mutex.h"
#include "common/retry.h"
#include "common/strings.h"
#include "common/trace.h"
#include "serve/circuit_breaker.h"
#include "serve/engine_server.h"

namespace {

using namespace km;
using namespace km::bench;

bool g_smoke = false;
int g_failed_checks = 0;

void BenchLine(const std::string& experiment, const std::string& db,
               const std::string& fields) {
  std::printf("BENCH {\"bench\":\"e12\",\"experiment\":\"%s\",\"db\":\"%s\",%s}\n",
              experiment.c_str(), db.c_str(), fields.c_str());
}

void Check(bool ok, const std::string& what) {
  std::printf("CHECK %s: %s\n", ok ? "ok" : "VIOLATED", what.c_str());
  if (!ok) ++g_failed_checks;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

/// Query texts of one database's generated workload (same construction as
/// E11, so the streams are comparable across benches).
std::vector<std::string> QueryTexts(const EvalDb& eval, size_t per_template) {
  Terminology terminology(eval.db->schema());
  SchemaGraph unit_graph(terminology, eval.db->schema());
  std::vector<std::string> texts;
  for (const WorkloadQuery& q :
       MakeWorkload(eval, terminology, unit_graph, per_template)) {
    std::string text;
    for (const std::string& kw : q.keywords) {
      if (!text.empty()) text += ' ';
      if (kw.find(' ') != std::string::npos) {
        text += '"' + kw + '"';
      } else {
        text += kw;
      }
    }
    texts.push_back(std::move(text));
  }
  return texts;
}

// ------------------------------------------------- E12a: load shedding

void RunShedding() {
  Banner("E12a", "load shedding and tail latency under 2x saturation (mondial)");
  EvalDb eval = MakeMondial();
  std::vector<std::string> texts = QueryTexts(eval, g_smoke ? 1 : 2);
  // The cross-query Steiner cache is off so every answer pays a realistic
  // backward-search cost; with it on, repeated texts collapse to sub-ms
  // lookups and queue wait — not service time — dominates every number.
  EngineOptions engine_options;
  engine_options.steiner_cache_capacity = 0;
  KeymanticEngine engine(*eval.db, engine_options);

  // Unloaded baseline: sequential answers through a generous server (no
  // queue pressure, no deadline) — the p99 every loaded number is judged
  // against. One warm-up pass fills the engine caches first.
  std::vector<double> unloaded_ms;
  {
    EngineServer server(engine);
    for (const std::string& q : texts) (void)server.Submit(q, 5).get();
    for (const std::string& q : texts) {
      int64_t t0 = MonotonicNowNs();
      auto result = server.Submit(q, 5).get();
      if (result.ok()) {
        unloaded_ms.push_back(static_cast<double>(MonotonicNowNs() - t0) / 1e6);
      }
    }
  }
  double unloaded_p99 = Percentile(unloaded_ms, 0.99);
  std::printf("unloaded: %zu queries, p50=%.2fms p99=%.2fms\n",
              unloaded_ms.size(), Percentile(unloaded_ms, 0.5), unloaded_p99);

  // Saturation: closed-loop clients against `kWorkers` serving threads,
  // with more clients than queue slots + execution slots — the offered
  // concurrency is several times capacity, past the 2× the acceptance bar
  // asks for, so the cap and the deadline test both engage. Per-request
  // deadlines (burned from submit) let admitted requests degrade instead
  // of overrun.
  const size_t kWorkers = 2;
  const size_t kSubmitters = 16;
  const size_t kQueueCap = 4;
  const size_t per_submitter = g_smoke ? 15 : 60;
  const double deadline_ms = std::max(5.0, 1.5 * unloaded_p99);

  EngineServerOptions options;
  options.workers = kWorkers;
  options.admission.max_queue = kQueueCap;
  options.aimd.initial_limit = static_cast<double>(kWorkers);
  options.aimd.min_limit = static_cast<double>(kWorkers);
  options.aimd.max_limit = static_cast<double>(4 * kWorkers);
  options.default_deadline_ms = deadline_ms;
  EngineServer server(engine, options);

  Mutex mu;
  std::vector<double> admitted_ms;
  std::atomic<uint64_t> ok_count{0}, shed_count{0}, expired_count{0};
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (size_t i = 0; i < per_submitter; ++i) {
        const std::string& q = texts[(s * per_submitter + i) % texts.size()];
        int64_t t0 = MonotonicNowNs();
        auto result = server.Submit(q, 5).get();
        double ms = static_cast<double>(MonotonicNowNs() - t0) / 1e6;
        if (result.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
          MutexLock lock(mu);
          admitted_ms.push_back(ms);
        } else if (result.status().code() == StatusCode::kOverloaded) {
          shed_count.fetch_add(1, std::memory_order_relaxed);
          // A well-behaved client backs off after a shed (the retry-after
          // hint); without this the shed path becomes a hot spin that
          // distorts the offered-load ratio.
          double pause = std::min(5.0, SuggestedRetryAfterMs(result.status()));
          std::this_thread::sleep_for(std::chrono::microseconds(
              static_cast<int64_t>(pause * 1000)));
        } else {
          expired_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  server.Drain();
  ServerStats stats = server.Stats();

  uint64_t total = kSubmitters * per_submitter;
  double shed_rate = static_cast<double>(shed_count.load()) /
                     static_cast<double>(total);
  double admitted_p99 = Percentile(admitted_ms, 0.99);
  double ratio = unloaded_p99 > 0 ? admitted_p99 / unloaded_p99 : 0.0;
  std::printf(
      "loaded: offered=%llu ok=%llu shed=%llu expired=%llu shed_rate=%.3f\n",
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(ok_count.load()),
      static_cast<unsigned long long>(shed_count.load()),
      static_cast<unsigned long long>(expired_count.load()), shed_rate);
  std::printf(
      "admitted p50=%.2fms p99=%.2fms (deadline=%.2fms, p99 ratio=%.2fx)\n",
      Percentile(admitted_ms, 0.5), admitted_p99, deadline_ms, ratio);
  std::printf("queue: max_depth=%zu cap=%zu | aimd_limit=%.2f | state=%s\n",
              stats.max_queue_depth, kQueueCap, stats.aimd_limit,
              OverloadStateName(stats.state));

  Check(shed_count.load() > 0, "overload sheds requests (shed count > 0)");
  Check(stats.max_queue_depth <= kQueueCap,
        "queue depth stays bounded at its cap");
  Check(!admitted_ms.empty() && ratio <= 2.0,
        "admitted p99 stays within 2x of unloaded p99 (ratio " +
            StrFormat("%.2f", ratio) + ")");
  BenchLine(
      "overload_shedding", eval.name,
      "\"offered\":" + std::to_string(total) +
          ",\"completed\":" + std::to_string(ok_count.load()) +
          ",\"shed\":" + std::to_string(shed_count.load()) +
          ",\"expired\":" + std::to_string(expired_count.load()) +
          ",\"shed_rate\":" + StrFormat("%.4f", shed_rate) +
          ",\"unloaded_p99_ms\":" + StrFormat("%.3f", unloaded_p99) +
          ",\"admitted_p99_ms\":" + StrFormat("%.3f", admitted_p99) +
          ",\"p99_ratio\":" + StrFormat("%.3f", ratio) +
          ",\"deadline_ms\":" + StrFormat("%.2f", deadline_ms) +
          ",\"max_queue_depth\":" + std::to_string(stats.max_queue_depth) +
          ",\"queue_cap\":" + std::to_string(kQueueCap));
}

// ------------------------------------------------- E12b: retry budget

void RunRetryBudget() {
  Banner("E12b", "retry budget caps amplification during a full outage");
  RetryOptions options;
  options.max_attempts = 4;
  options.budget_ratio = 0.1;
  options.budget_cap = 10.0;
  RetryPolicy policy(options);

  const int kRequests = g_smoke ? 500 : 5000;
  int total_retries = 0;
  for (int r = 0; r < kRequests; ++r) {
    policy.OnRequest();
    int attempts = 1;
    while (policy.ShouldRetry(OverloadedStatus("outage", 1), attempts)) {
      ++attempts;
      ++total_retries;
    }
  }
  double amplification =
      static_cast<double>(kRequests + total_retries) / kRequests;
  double bound = options.budget_cap + options.budget_ratio * kRequests + 1;
  std::printf(
      "outage of %d requests (max_attempts=%d): retries=%d "
      "amplification=%.3fx (unbudgeted would be %.1fx)\n",
      kRequests, options.max_attempts, total_retries, amplification,
      static_cast<double>(options.max_attempts));
  Check(total_retries <= static_cast<int>(bound),
        "retries stay under budget_cap + ratio*requests");
  Check(amplification <= 1.0 + options.budget_ratio + 0.05,
        "offered-load amplification ~ (1 + budget_ratio)");
  BenchLine("retry_budget", "none",
            "\"requests\":" + std::to_string(kRequests) +
                ",\"retries\":" + std::to_string(total_retries) +
                ",\"amplification\":" + StrFormat("%.4f", amplification) +
                ",\"budget_ratio\":" + StrFormat("%.2f", options.budget_ratio));
}

// ------------------------------------------------- E12c: breaker cycle

void RunBreakerCycle() {
  Banner("E12c", "circuit breaker trip / fail-fast / recover (university)");
  if (!failpoints::Enabled()) {
    std::printf("failpoint sites compiled out (KM_FAILPOINTS=OFF) — skipping "
                "the breaker cycle.\n");
    return;
  }
  failpoints::Reset();
  EvalDb eval = MakeUniversity();

  CircuitBreakerOptions breaker_options;
  breaker_options.consecutive_failures = 1;
  breaker_options.close_after_successes = 1;
  breaker_options.open_cooldown_ms = 200.0;
  CircuitBreaker breaker("e12", breaker_options);

  EngineOptions options;
  options.penalize_empty_results = true;
  options.execution_gate = &breaker;
  KeymanticEngine engine(*eval.db, options);

  // Outage: every executor join fails; probing trips the breaker.
  failpoints::EnableError("executor.join.fail",
                          Status::Internal("injected backend outage"));
  auto tripped = engine.Answer("Vokram IT", 5);
  Check(tripped.ok() && !tripped->explanations.empty(),
        "answers stay ranked during the outage");
  Check(breaker.state() == BreakerState::kOpen, "breaker trips open");
  uint64_t hits_at_trip = failpoints::HitCount("executor.join.fail");

  // While open: fail-fast, the dead backend is not touched again.
  const int kOpenAnswers = g_smoke ? 5 : 20;
  for (int i = 0; i < kOpenAnswers; ++i) (void)engine.Answer("Vokram IT", 5);
  uint64_t hits_while_open =
      failpoints::HitCount("executor.join.fail") - hits_at_trip;
  std::printf("open: %d answers produced 0 backend calls (rejections=%llu)\n",
              kOpenAnswers, static_cast<unsigned long long>(breaker.rejections()));
  Check(hits_while_open == 0, "backend call count flat while the circuit is open");

  // Heal + cooldown: the half-open probe succeeds and the circuit closes.
  failpoints::Reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  auto healed = engine.Answer("Vokram IT", 5);
  Check(healed.ok() && breaker.state() == BreakerState::kClosed,
        "circuit closes after cooldown once the backend heals");
  std::printf("cycle: trips=%llu rejections=%llu final_state=%s\n",
              static_cast<unsigned long long>(breaker.trips()),
              static_cast<unsigned long long>(breaker.rejections()),
              BreakerStateName(breaker.state()));
  BenchLine("breaker_cycle", eval.name,
            "\"trips\":" + std::to_string(breaker.trips()) +
                ",\"rejections\":" + std::to_string(breaker.rejections()) +
                ",\"open_backend_calls\":" + std::to_string(hits_while_open) +
                ",\"recovered\":" +
                (breaker.state() == BreakerState::kClosed ? "true" : "false"));
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  RunShedding();
  RunRetryBudget();
  RunBreakerCycle();
  if (g_failed_checks > 0) {
    std::printf("\n%d CHECK(s) VIOLATED\n", g_failed_checks);
    return 1;
  }
  std::printf("\nall checks passed\n");
  return 0;
}
