// Shared fixtures for the experiment harnesses (E1..E10).
//
// Every bench binary regenerates one table/figure of the reconstructed
// evaluation (see EXPERIMENTS.md). The three evaluation databases are
// built once per process with sizes that keep the full suite under a few
// minutes while preserving the paper's size/complexity contrast:
// university (tiny, running example), mondial (complex schema), dblp
// (flat schema, larger instance).

#ifndef KM_BENCH_BENCH_COMMON_H_
#define KM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "core/keymantic.h"
#include "datasets/dblp.h"
#include "datasets/imdb.h"
#include "datasets/mondial.h"
#include "datasets/university.h"
#include "workload/metrics.h"
#include "workload/workload.h"

namespace km::bench {

/// One evaluation database with its template set.
struct EvalDb {
  std::string name;
  std::unique_ptr<Database> db;
  std::vector<QueryTemplate> templates;
};

inline EvalDb MakeUniversity() {
  UniversityOptions opts;
  opts.extra_people = 60;
  opts.extra_departments = 10;
  opts.extra_universities = 8;
  opts.extra_projects = 12;
  auto db = BuildUniversityDatabase(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "university build failed: %s\n",
                 db.status().ToString().c_str());
    std::abort();
  }
  return {"university", std::make_unique<Database>(std::move(*db)),
          UniversityTemplates()};
}

inline EvalDb MakeMondial() {
  auto db = BuildMondialDatabase();
  if (!db.ok()) {
    std::fprintf(stderr, "mondial build failed: %s\n", db.status().ToString().c_str());
    std::abort();
  }
  return {"mondial", std::make_unique<Database>(std::move(*db)), MondialTemplates()};
}

inline EvalDb MakeDblp(size_t scale = 1) {
  DblpOptions opts;
  opts.persons = 1000 * scale;
  opts.articles = 1500 * scale;
  opts.inproceedings = 2500 * scale;
  opts.phd_theses = 100 * scale;
  auto db = BuildDblpDatabase(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "dblp build failed: %s\n", db.status().ToString().c_str());
    std::abort();
  }
  return {"dblp", std::make_unique<Database>(std::move(*db)), DblpTemplates()};
}

inline EvalDb MakeImdb() {
  auto db = BuildImdbDatabase();
  if (!db.ok()) {
    std::fprintf(stderr, "imdb build failed: %s\n", db.status().ToString().c_str());
    std::abort();
  }
  return {"imdb", std::make_unique<Database>(std::move(*db)), ImdbTemplates()};
}

/// All four evaluation databases.
inline std::vector<EvalDb> MakeAllDbs() {
  std::vector<EvalDb> dbs;
  dbs.push_back(MakeUniversity());
  dbs.push_back(MakeMondial());
  dbs.push_back(MakeDblp());
  dbs.push_back(MakeImdb());
  return dbs;
}

/// Generates the labelled workload for one database (unit-weight graph for
/// gold interpretations, as the generator requires).
inline std::vector<WorkloadQuery> MakeWorkload(const EvalDb& eval,
                                               const Terminology& terminology,
                                               const SchemaGraph& unit_graph,
                                               size_t queries_per_template,
                                               uint64_t seed = 101) {
  WorkloadOptions opts;
  opts.queries_per_template = queries_per_template;
  opts.seed = seed;
  WorkloadGenerator gen(*eval.db, terminology, unit_graph, opts);
  auto queries = gen.Generate(eval.templates);
  if (!queries.ok()) {
    std::fprintf(stderr, "workload generation failed for %s: %s\n",
                 eval.name.c_str(), queries.status().ToString().c_str());
    std::abort();
  }
  return std::move(*queries);
}

/// Prints an experiment banner.
inline void Banner(const char* id, const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("==============================================================\n");
}

/// Per-query wall-clock budget for budget-pressure runs, set by the
/// --deadline_ms flag. 0 (the default) means unlimited: benches measure
/// the undisturbed pipeline.
inline double& DeadlineMs() {
  static double value = 0.0;
  return value;
}

/// Whether the harness should run its engines with span tracing on and
/// report per-stage latency breakdowns (--trace). Off by default so the
/// headline numbers measure the untraced pipeline.
inline bool& TraceBench() {
  static bool value = false;
  return value;
}

/// Strips the harness-specific flags (--deadline_ms=<double>, --trace) out
/// of (argc, argv). Must run before benchmark::Initialize, which rejects
/// flags it does not recognize.
inline void ParseBenchFlags(int* argc, char** argv) {
  const std::string prefix = "--deadline_ms=";
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      DeadlineMs() = std::atof(arg.substr(prefix.size()).c_str());
    } else if (arg == "--trace") {
      TraceBench() = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Per-stage latency accounting over traced Answer() calls. Feeds on the
/// span tree each AnswerResult carries (so it needs engines built with
/// options.trace — see TraceBench()) and reports one machine-readable
///   BENCH {"bench":...,"experiment":"stage_breakdown","stage":...,...}
/// line per pipeline stage, the per-stage companion of the headline
/// throughput lines.
struct StageBreakdown {
  /// stage name (top-level span under the "answer" root) → total wall ms.
  std::map<std::string, double> wall_ms;
  uint64_t queries = 0;

  void Count(const AnswerResult& result) {
    if (result.trace == nullptr) return;
    ++queries;
    for (const auto& child : result.trace->children()) {
      wall_ms[child->name()] += child->wall_ms();
    }
  }

  void Report(const char* bench, const char* db) const {
    if (queries == 0) return;
    for (const auto& [stage, total] : wall_ms) {
      std::printf(
          "BENCH {\"bench\":\"%s\",\"experiment\":\"stage_breakdown\","
          "\"db\":\"%s\",\"stage\":\"%s\",\"queries\":%llu,"
          "\"total_ms\":%.3f,\"mean_ms\":%.4f}\n",
          bench, db, stage.c_str(), static_cast<unsigned long long>(queries),
          total, total / static_cast<double>(queries));
    }
  }
};

/// Degraded-vs-complete accounting for budget-pressure runs: every
/// Answer() outcome lands in exactly one bucket.
struct QualityTally {
  uint64_t by_quality[4] = {};  // indexed by ResultQuality
  uint64_t errors = 0;          // Answer returned a Status
  uint64_t empties = 0;         // ok but zero explanations (must stay zero)
  uint64_t total = 0;

  void Count(const StatusOr<AnswerResult>& result) {
    ++total;
    if (!result.ok()) {
      ++errors;
      return;
    }
    if (result->explanations.empty()) ++empties;
    ++by_quality[static_cast<size_t>(result->quality)];
  }

  void Report(const char* label) const {
    if (total == 0) return;
    auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };
    std::printf(
        "\n%s (deadline_ms=%.3f): queries=%llu complete=%llu degraded=%llu "
        "partial=%llu deadline_exceeded=%llu errors=%llu empty=%llu\n",
        label, DeadlineMs(), u(total),
        u(by_quality[static_cast<size_t>(ResultQuality::kComplete)]),
        u(by_quality[static_cast<size_t>(ResultQuality::kDegraded)]),
        u(by_quality[static_cast<size_t>(ResultQuality::kPartial)]),
        u(by_quality[static_cast<size_t>(ResultQuality::kDeadlineExceeded)]),
        u(errors), u(empties));
  }
};

/// Process-wide tally shared by all benchmark repetitions.
inline QualityTally& Tally() {
  static QualityTally tally;
  return tally;
}

}  // namespace km::bench

#endif  // KM_BENCH_BENCH_COMMON_H_
