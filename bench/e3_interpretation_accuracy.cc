// E3 — accuracy of the backward step (interpretations) in isolation.
//
// Starting from the *gold* configurations (so forward errors do not blur
// the picture), ranks join trees with three strategies: Steiner trees with
// mutual-information edge weights, Steiner trees with uniform weights, and
// the greedy shortest-path baseline.
//
// Ground truth is semantic, not algorithmic: among the union of all
// candidate trees, the gold interpretation is the structurally cheapest
// (fewest edges) whose translated SQL returns a non-empty result — the
// paper's point that an interpretation should both be minimal and actually
// connect data. Reported per method:
//   * top-k accuracy against that gold,
//   * the fraction of queries whose *top-1* tree yields zero tuples (the
//     failure mode the MI weighting is designed to minimize).
//
// Two regimes are measured:
//   E3a — the standard densely-linked databases with correlated workloads:
//         every method is near-perfect (the cheapest tree already connects
//         data), so this mostly separates Steiner from the shortest-path
//         baseline beyond top-1.
//   E3b — a sparse-join mondial (link tables cover 30% of features) with
//         *uncorrelated* keyword values: many cheap join paths are empty,
//         and the MI weighting should cut the empty@1 rate.

#include <map>

#include "bench/bench_common.h"
#include "core/translate.h"
#include "engine/executor.h"
#include "graph/mi.h"

namespace {

using namespace km;
using namespace km::bench;

void RunSection(const EvalDb& eval, const std::vector<WorkloadQuery>& workload,
                const Terminology& terminology, const SchemaGraph& unit_graph,
                const SchemaGraph& mi_graph) {
  const std::vector<size_t> ks = {1, 2, 3, 5};
  Executor exec(*eval.db);

  struct MethodStats {
    TopKAccuracy acc;
    size_t empty_top1 = 0;
    size_t answered = 0;
  };
  std::map<std::string, MethodStats> stats;

  for (const WorkloadQuery& q : workload) {
    std::vector<size_t> terminals = TerminalsOfConfiguration(q.gold_config);
    SteinerOptions opts;
    opts.k = 10;

    auto mi_trees = TopKSteinerTrees(mi_graph, terminals, opts);
    auto uni_trees = TopKSteinerTrees(unit_graph, terminals, opts);
    auto sp_trees = ShortestPathTrees(unit_graph, terminals, 10);
    if (!mi_trees.ok() || !uni_trees.ok() || !sp_trees.ok()) continue;

    // Semantic gold: cheapest (fewest edges) candidate whose SQL is
    // non-empty, over the union of all methods' candidates. Memoized per
    // query since the same tree appears in several lists.
    std::map<std::string, bool> non_empty_cache;
    auto non_empty = [&](const Interpretation& t) {
      auto [it, fresh] = non_empty_cache.emplace(t.Signature(), false);
      if (!fresh) return it->second;
      auto sql = TranslateToSql(q.keywords, q.gold_config, t, terminology,
                                eval.db->schema(), unit_graph);
      if (sql.ok()) {
        auto count = exec.Count(*sql);
        it->second = count.ok() && *count > 0;
      }
      return it->second;
    };
    std::map<std::string, const Interpretation*> pool;
    for (const auto* list : {&*mi_trees, &*uni_trees, &*sp_trees}) {
      for (const Interpretation& t : *list) pool.emplace(t.Signature(), &t);
    }
    const Interpretation* gold = nullptr;
    for (const auto& [sig, tree] : pool) {
      if (!non_empty(*tree)) continue;
      if (gold == nullptr || tree->edges.size() < gold->edges.size()) gold = tree;
    }
    if (gold == nullptr) continue;  // no connecting data at all
    std::string gold_sig = gold->Signature();

    auto record = [&](const char* name, const std::vector<Interpretation>& trees) {
      MethodStats& s = stats[name];
      s.acc.Add(RankOfInterpretation(trees, gold_sig));
      ++s.answered;
      if (!trees.empty() && !non_empty(trees[0])) ++s.empty_top1;
    };
    record("steiner-mi", *mi_trees);
    record("steiner-uniform", *uni_trees);
    record("shortest-path", *sp_trees);
  }

  for (const char* name : {"steiner-mi", "steiner-uniform", "shortest-path"}) {
    const MethodStats& s = stats[name];
    double empty_rate = s.answered > 0
                            ? 100.0 * static_cast<double>(s.empty_top1) /
                                  static_cast<double>(s.answered)
                            : 0.0;
    std::printf("%s  empty@1 %5.1f%%\n", FormatAccuracyRow(name, s.acc, ks).c_str(),
                empty_rate);
  }
}

}  // namespace

int main() {
  Banner("E3", "backward-step accuracy: Steiner(MI) vs Steiner(uniform) vs SP");

  std::printf("\n--- E3a: dense links, correlated workloads ---\n");
  for (EvalDb& eval : MakeAllDbs()) {
    std::printf("\n[%s]\n", eval.name.c_str());
    Terminology terminology(eval.db->schema());
    SchemaGraph unit_graph(terminology, eval.db->schema());
    SchemaGraph mi_graph(terminology, eval.db->schema());
    if (!ApplyMiWeights(*eval.db, &mi_graph).ok()) {
      std::fprintf(stderr, "MI weighting failed\n");
      return 1;
    }
    auto workload = MakeWorkload(eval, terminology, unit_graph, 6);
    RunSection(eval, workload, terminology, unit_graph, mi_graph);
  }

  std::printf("\n--- E3b: differential-sparsity microbenchmark ---\n");
  std::printf("two equal-length join paths between A and B: THIN (5 rows)\n");
  std::printf("vs WIDE (600 rows); facts are drawn from WIDE joins. Run for\n");
  std::printf("both schema declaration orders: methods that cannot see join\n");
  std::printf("statistics break the tie by declaration order and flip.\n");
  for (bool wide_first : {false, true}) {
    std::printf("\n[%s declared first]\n", wide_first ? "WIDE" : "THIN");
    // Build the two-path database.
    Database db("twopath");
    auto must = [](const Status& s) {
      if (!s.ok()) {
        std::fprintf(stderr, "twopath build failed: %s\n", s.ToString().c_str());
        std::abort();
      }
    };
    must(db.CreateRelation(RelationSchema(
        "A", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
              {"X", DataType::kText, DomainTag::kProperNoun}})));
    must(db.CreateRelation(RelationSchema(
        "B", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
              {"Y", DataType::kText, DomainTag::kProperNoun}})));
    std::vector<const char*> links = wide_first
                                         ? std::vector<const char*>{"WIDE", "THIN"}
                                         : std::vector<const char*>{"THIN", "WIDE"};
    for (const char* link : links) {
      must(db.CreateRelation(RelationSchema(
          link, {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                 {"A", DataType::kText, DomainTag::kIdentifier},
                 {"B", DataType::kText, DomainTag::kIdentifier}})));
      must(db.AddForeignKey({link, "A", "A", "Id"}));
      must(db.AddForeignKey({link, "B", "B", "Id"}));
    }
    Rng rng(77);
    const size_t n = 60;
    for (size_t i = 0; i < n; ++i) {
      must(db.Insert("A", {Value::Text("a" + std::to_string(i)),
                           Value::Text("Alpha" + std::to_string(i))}));
      must(db.Insert("B", {Value::Text("b" + std::to_string(i)),
                           Value::Text("Beta" + std::to_string(i))}));
    }
    std::vector<std::pair<size_t, size_t>> wide_pairs;
    for (size_t i = 0; i < 600; ++i) {
      size_t a = rng.Uniform(n), b = rng.Uniform(n);
      must(db.Insert("WIDE", {Value::Text("w" + std::to_string(i)),
                              Value::Text("a" + std::to_string(a)),
                              Value::Text("b" + std::to_string(b))}));
      wide_pairs.push_back({a, b});
    }
    for (size_t i = 0; i < 5; ++i) {
      must(db.Insert("THIN", {Value::Text("t" + std::to_string(i)),
                              Value::Text("a" + std::to_string(rng.Uniform(n))),
                              Value::Text("b" + std::to_string(rng.Uniform(n)))}));
    }

    Terminology terminology(db.schema());
    SchemaGraph unit_graph(terminology, db.schema());
    SchemaGraph mi_graph(terminology, db.schema());
    must(ApplyMiWeights(db, &mi_graph));
    Executor exec(db);
    auto ax = *terminology.DomainTerm("A", "X");
    auto by = *terminology.DomainTerm("B", "Y");

    struct Res {
      size_t empty_top1 = 0;
      size_t total = 0;
    };
    std::map<std::string, Res> res;
    Configuration config;
    config.term_for_keyword = {ax, by};
    for (size_t trial = 0; trial < 100; ++trial) {
      auto [a, b] = wide_pairs[rng.Uniform(wide_pairs.size())];
      std::vector<std::string> keywords = {"Alpha" + std::to_string(a),
                                           "Beta" + std::to_string(b)};
      auto eval_method = [&](const char* name, const SchemaGraph& g,
                             bool shortest_path) {
        std::vector<Interpretation> trees;
        if (shortest_path) {
          auto t = ShortestPathTrees(g, {ax, by}, 1);
          if (t.ok()) trees = std::move(*t);
        } else {
          SteinerOptions opts;
          opts.k = 1;
          auto t = TopKSteinerTrees(g, {ax, by}, opts);
          if (t.ok()) trees = std::move(*t);
        }
        Res& r = res[name];
        ++r.total;
        if (trees.empty()) {
          ++r.empty_top1;
          return;
        }
        auto sql = TranslateToSql(keywords, config, trees[0], terminology,
                                  db.schema(), g);
        auto count = sql.ok() ? exec.Count(*sql) : StatusOr<size_t>(sql.status());
        if (!count.ok() || *count == 0) ++r.empty_top1;
      };
      eval_method("steiner-mi", mi_graph, false);
      eval_method("steiner-uniform", unit_graph, false);
      eval_method("shortest-path", unit_graph, true);
    }
    for (const auto& [name, r] : res) {
      std::printf("%-20s empty@1 %5.1f%%  (n=%zu)\n", name.c_str(),
                  100.0 * static_cast<double>(r.empty_top1) /
                      static_cast<double>(r.total),
                  r.total);
    }
  }

  std::printf("\n(E3a: all methods near-perfect, Steiner >= shortest-path beyond\n"
              " top-1; E3b: steiner-mi routes through the dense link and should\n"
              " show a near-zero empty@1 rate while uniform weights cannot tell\n"
              " the two equal-length paths apart)\n");
  return 0;
}
