// E8 — forward-step comparison: metadata/Hungarian vs HMM variants.
//
// Compares four forward-analysis implementations on identical workloads:
//   hungarian      — the paper's metadata approach (this system's core),
//   hmm-apriori    — HMM with heuristic transition matrix + HITS initial,
//   hmm-trained    — HMM after supervised training on a held-out workload,
//   hmm-uniform    — HMM with uniform transitions (no heuristics reference),
//   combined-dst   — DST fusion of hungarian and trained-HMM lists.
// Reports top-k accuracy and mean per-query latency. Expected shape:
// hungarian ≈ hmm-trained > hmm-apriori > hmm-uniform; combined-dst at
// least as good as the best single method.

#include "bench/bench_common.h"

#include "common/trace.h"
#include "hmm/model_builder.h"

int main() {
  using namespace km;
  using namespace km::bench;

  Banner("E8", "forward-step comparison: Hungarian vs HMM variants");
  const std::vector<size_t> ks = {1, 3, 10};

  for (EvalDb& eval : MakeAllDbs()) {
    std::printf("\n[%s]\n", eval.name.c_str());
    Terminology terminology(eval.db->schema());
    SchemaGraph unit_graph(terminology, eval.db->schema());
    auto train = MakeWorkload(eval, terminology, unit_graph, 20, /*seed=*/500);
    auto test = MakeWorkload(eval, terminology, unit_graph, 10, /*seed=*/101);

    // Train an HMM on the gold term sequences of the training split.
    HmmTrainer trainer(terminology, eval.db->schema());
    for (const WorkloadQuery& q : train) {
      trainer.AddSequence(q.gold_config.term_for_keyword);
    }
    Hmm trained = trainer.Train();

    struct Method {
      const char* name;
      ForwardMode mode;
      bool uniform_hmm = false;
    };
    const Method kMethods[] = {
        {"hungarian", ForwardMode::kHungarian},
        {"hmm-apriori", ForwardMode::kHmmApriori},
        {"hmm-trained", ForwardMode::kHmmTrained},
        {"hmm-uniform", ForwardMode::kHmmTrained, /*uniform=*/true},
        {"combined-dst", ForwardMode::kCombinedDst},
    };
    // Two emission regimes: full instance access (strong emissions) and
    // metadata-only (weak emissions — the regime where the heuristic
    // transition prior is designed to carry the load).
    for (bool metadata_only : {false, true}) {
      std::printf(" %s:\n", metadata_only ? "metadata-only emissions"
                                          : "full-access emissions");
      for (const Method& m : kMethods) {
        EngineOptions opts;
        opts.forward_mode = m.mode;
        if (metadata_only) {
          opts.weights.use_instance_vocabulary = false;
          opts.use_mi_weights = false;
          opts.build_phrase_vocabulary = false;
        }
        KeymanticEngine engine(*eval.db, opts);
        if (m.uniform_hmm) {
          engine.SetTrainedHmm(BuildUniformHmm(terminology));
        } else {
          engine.SetTrainedHmm(trained);
        }
        TopKAccuracy acc;
        Stopwatch sw;
        for (const WorkloadQuery& q : test) {
          auto configs = engine.Configurations(q.keywords, 10);
          acc.Add(configs.ok() ? RankOfConfiguration(*configs, q.gold_config) : -1);
        }
        double ms_per_query = sw.ElapsedMillis() / static_cast<double>(test.size());
        std::printf("%s  %7.2f ms/query\n", FormatAccuracyRow(m.name, acc, ks).c_str(),
                    ms_per_query);
      }
    }
  }
  std::printf("\n(expect hungarian ≈ hmm-trained > hmm-apriori > hmm-uniform; the\n"
              " apriori-vs-uniform gap is widest with metadata-only emissions)\n");
  return 0;
}
