// E4 — end-to-end explanation accuracy and the step-combination ablation.
//
// Runs the full pipeline (forward + backward + combination + translation)
// and reports the rank of the gold SQL among the returned explanations,
// comparing the DST combination against linear combination and against
// using only one of the two rankings. Expected shape: combined ranking
// beats either step alone.

#include "bench/bench_common.h"

int main() {
  using namespace km;
  using namespace km::bench;

  Banner("E4", "end-to-end explanation accuracy (combination ablation)");
  const std::vector<size_t> ks = {1, 3, 5, 10};

  const struct {
    const char* name;
    CombineMode mode;
  } kModes[] = {
      {"dst-combined", CombineMode::kDst},
      {"linear", CombineMode::kLinear},
      {"forward-only", CombineMode::kForwardOnly},
      {"backward-only", CombineMode::kBackwardOnly},
  };

  for (EvalDb& eval : MakeAllDbs()) {
    std::printf("\n[%s]\n", eval.name.c_str());
    Terminology terminology(eval.db->schema());
    SchemaGraph unit_graph(terminology, eval.db->schema());
    auto workload = MakeWorkload(eval, terminology, unit_graph, 8);

    for (const auto& m : kModes) {
      EngineOptions opts;
      opts.combine_mode = m.mode;
      // Gold interpretations come from the unit-weight graph; rank with the
      // same weighting so signatures are comparable.
      opts.use_mi_weights = false;
      KeymanticEngine engine(*eval.db, opts);
      TopKAccuracy acc;
      for (const WorkloadQuery& q : workload) {
        auto results = engine.SearchKeywords(q.keywords, 10);
        acc.Add(results.ok() ? RankOfExplanation(*results, q.gold_sql_signature) : -1);
      }
      std::printf("%s\n", FormatAccuracyRow(m.name, acc, ks).c_str());
    }
  }
  std::printf("\n(expect dst-combined/linear >= forward-only, backward-only)\n");
  return 0;
}
