// E2 — ablation of the weight-matrix components (forward step).
//
// Reproduces the paper-family table quantifying how much each metadata
// ingredient contributes: synonym thesaurus, domain-pattern recognizers,
// contextualization, string similarity, and the candidate re-ranking.
// Expected shape: the full system dominates every ablation;
// −contextualization and −patterns cost the most.

#include "bench/bench_common.h"

namespace {

struct Variant {
  const char* name;
  km::EngineOptions options;
};

std::vector<Variant> Variants() {
  using namespace km;
  std::vector<Variant> out;
  out.push_back({"full", EngineOptions{}});
  {
    EngineOptions o;
    o.weights.use_synonyms = false;
    out.push_back({"-synonyms", o});
  }
  {
    EngineOptions o;
    o.weights.use_domain_patterns = false;
    out.push_back({"-patterns", o});
  }
  {
    EngineOptions o;
    o.forward.contextualize.enabled = false;
    out.push_back({"-contextualization", o});
  }
  {
    EngineOptions o;
    o.weights.use_string_similarity = false;
    out.push_back({"-string-sim", o});
  }
  {
    EngineOptions o;
    o.forward.mode = ConfigGenMode::kIntrinsicOnly;
    out.push_back({"intrinsic-only", o});
  }
  return out;
}

}  // namespace

int main() {
  using namespace km;
  using namespace km::bench;

  Banner("E2", "ablation of the forward-step weight components");
  const std::vector<size_t> ks = {1, 10};

  for (EvalDb& eval : MakeAllDbs()) {
    std::printf("\n[%s]\n", eval.name.c_str());
    Terminology terminology(eval.db->schema());
    SchemaGraph unit_graph(terminology, eval.db->schema());
    auto workload = MakeWorkload(eval, terminology, unit_graph, 10);

    for (const Variant& v : Variants()) {
      KeymanticEngine engine(*eval.db, v.options);
      TopKAccuracy acc;
      for (const WorkloadQuery& q : workload) {
        auto configs = engine.Configurations(q.keywords, 10);
        acc.Add(configs.ok() ? RankOfConfiguration(*configs, q.gold_config) : -1);
      }
      std::printf("%s\n", FormatAccuracyRow(v.name, acc, ks).c_str());
    }
  }
  std::printf("\n(expect 'full' to dominate each ablation)\n");
  return 0;
}
