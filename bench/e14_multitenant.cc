// E14 — multi-tenant fairness over real sockets: an open-loop load
// generator drives mixed traffic through the network front end
// (src/net/) against a TenantRegistry, and measures whether one abusive
// tenant can hurt its neighbors.
//
// Setup: three tenants share one NetServer on a loopback TCP port. Each
// tenant has its own EngineServer (admission quota + AIMD limiter + cache
// partition) over its own university engine. Every client is open-loop —
// a sender thread paces QURY frames at a fixed interval regardless of
// responses, a reader thread matches RESP/RTRY/ERRR frames back by
// request id — so server slowdowns cannot throttle the offered load the
// way closed-loop clients silently do.
//
// Phases:
//
//   1. baseline — the two quiet tenants run their workloads concurrently
//      at a gentle rate (half their measured solo capacity). This is the
//      "well-behaved neighborhood" p99 that fairness is judged against.
//      A calibration pass (sequential Asks) precedes it to size the rate.
//
//   2. mixed — same quiet traffic, plus the abusive tenant offering 10x
//      the quiet rate against a deliberately small admission quota.
//
//   3. drain — a fresh server under live closed-loop load plus one
//      stalled client that bursts queries and never reads (its outbox
//      wedges against the write-buffer cap). Drain(deadline) must finish
//      the compliant clients' in-flight work — zero lost responses —
//      while the write-stall timer evicts the wedged connection, all
//      inside the deadline.
//
// Fairness acceptance (CHECK lines; non-zero exit on violation):
//   * each quiet tenant's mixed p99 stays within 2x of its baseline p99
//     (plus a small additive floor so sub-ms baselines don't turn
//     scheduler jitter into failures);
//   * quiet tenants shed nothing in the smoke run;
//   * the abusive tenant's quota visibly sheds (shed rate > 0) — the
//     isolation is real, not an under-offered accident.
//
// Output: per-tenant, per-phase `BENCH {"bench":"e14",...}` rows with
// offered/completed/shed counts, shed rate, p50/p99, and for quiet
// tenants the mixed/baseline isolation ratio.
//
// Flags: --smoke (CI-sized), --deadline_ms (accepted for uniformity).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/trace.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serve/engine_server.h"
#include "serve/tenant.h"

namespace {

using namespace km;
using namespace km::bench;

bool g_smoke = false;
int g_failed_checks = 0;

void BenchLine(const std::string& experiment, const std::string& tenant,
               const std::string& fields) {
  std::printf(
      "BENCH {\"bench\":\"e14\",\"experiment\":\"%s\",\"db\":\"university\","
      "\"tenant\":\"%s\",%s}\n",
      experiment.c_str(), tenant.c_str(), fields.c_str());
}

void Check(bool ok, const std::string& what) {
  std::printf("CHECK %s: %s\n", ok ? "ok" : "VIOLATED", what.c_str());
  if (!ok) ++g_failed_checks;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

/// Query texts from the university workload generator (same construction
/// as E11/E12, so the streams are comparable across benches).
std::vector<std::string> QueryTexts(const EvalDb& eval, size_t per_template) {
  Terminology terminology(eval.db->schema());
  SchemaGraph unit_graph(terminology, eval.db->schema());
  std::vector<std::string> texts;
  for (const WorkloadQuery& q :
       MakeWorkload(eval, terminology, unit_graph, per_template)) {
    std::string text;
    for (const std::string& kw : q.keywords) {
      if (!text.empty()) text += ' ';
      if (kw.find(' ') != std::string::npos) {
        text += '"' + kw + '"';
      } else {
        text += kw;
      }
    }
    texts.push_back(std::move(text));
  }
  return texts;
}

// ----------------------------------------------- open-loop TCP client

/// Everything one open-loop client observed: offered = frames sent,
/// completed/shed/errors = matched replies, latencies for completed only.
struct OpenLoopResult {
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  uint64_t lost = 0;  ///< sent but never answered before the drain window
  std::vector<double> latencies_ms;

  double shed_rate() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(shed) / static_cast<double>(offered);
  }
  double p50() const {
    return Percentile(latencies_ms, 0.5);
  }
  double p99() const {
    return Percentile(latencies_ms, 0.99);
  }
};

/// Drives one tenant's connection open-loop: `count` queries paced at
/// `interval_ms`, replies matched by request id on a reader thread. The
/// drain window after the last send bounds how long stragglers may take.
OpenLoopResult RunOpenLoop(uint16_t port, const std::string& tenant,
                           const std::vector<std::string>& texts, size_t count,
                           double interval_ms, double drain_window_ms = 10'000.0) {
  OpenLoopResult out;
  auto client = net::NetClient::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    std::abort();
  }
  Status hello = (*client)->Hello(tenant);
  if (!hello.ok()) {
    std::fprintf(stderr, "hello(%s) failed: %s\n", tenant.c_str(),
                 hello.ToString().c_str());
    std::abort();
  }

  Mutex mu;
  std::unordered_map<uint64_t, int64_t> sent_at_ns;  // guarded by mu
  std::atomic<uint64_t> answered{0};
  std::atomic<bool> sending_done{false};

  std::thread reader([&] {
    while (true) {
      if (sending_done.load(std::memory_order_acquire) &&
          answered.load(std::memory_order_relaxed) >= count) {
        return;
      }
      auto frame = (*client)->ReadFrame(/*timeout_ms=*/100.0);
      if (!frame.ok()) {
        if (frame.status().code() == StatusCode::kDeadlineExceeded) continue;
        return;  // closed or broken — the drain window accounts the rest
      }
      int64_t now = MonotonicNowNs();
      int64_t t0 = 0;
      {
        MutexLock lock(mu);
        auto it = sent_at_ns.find(frame->request_id);
        if (it == sent_at_ns.end()) continue;  // duplicate or stray
        t0 = it->second;
        sent_at_ns.erase(it);
      }
      answered.fetch_add(1, std::memory_order_relaxed);
      if (net::FrameIs(*frame, "RESP")) {
        ++out.completed;
        out.latencies_ms.push_back(static_cast<double>(now - t0) / 1e6);
      } else if (net::FrameIs(*frame, "RTRY")) {
        ++out.shed;
      } else {
        ++out.errors;
      }
    }
  });

  const auto interval =
      std::chrono::microseconds(static_cast<int64_t>(interval_ms * 1000.0));
  auto next_send = std::chrono::steady_clock::now();
  for (size_t i = 0; i < count; ++i) {
    const uint64_t id = i + 1;
    {
      MutexLock lock(mu);
      sent_at_ns.emplace(id, MonotonicNowNs());
    }
    Status sent =
        (*client)->SendQuery(id, texts[i % texts.size()], 5, DeadlineMs());
    if (!sent.ok()) {
      MutexLock lock(mu);
      sent_at_ns.erase(id);
      break;
    }
    ++out.offered;
    // Open loop: the next send time advances by the interval whether or
    // not the server kept up — backlog shows up as latency, not as a
    // silently reduced offered rate.
    next_send += interval;
    std::this_thread::sleep_until(next_send);
  }
  sending_done.store(true, std::memory_order_release);

  // Drain: give stragglers a bounded window, then cut the reader loose.
  const auto drain_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<int64_t>(drain_window_ms));
  while (answered.load(std::memory_order_relaxed) < out.offered &&
         std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  (*client)->Close();  // unblocks the reader if stragglers remain
  reader.join();
  MutexLock lock(mu);
  out.lost = sent_at_ns.size();
  return out;
}

void ReportTenant(const std::string& phase, const std::string& tenant,
                  const OpenLoopResult& r, double extra_ratio = -1.0) {
  std::printf(
      "%-8s %-8s offered=%-5llu completed=%-5llu shed=%-5llu errors=%llu "
      "lost=%llu shed_rate=%.3f p50=%.2fms p99=%.2fms\n",
      phase.c_str(), tenant.c_str(), static_cast<unsigned long long>(r.offered),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.errors),
      static_cast<unsigned long long>(r.lost), r.shed_rate(), r.p50(), r.p99());
  std::string fields = "\"phase\":\"" + phase + "\"" +
                       ",\"offered\":" + std::to_string(r.offered) +
                       ",\"completed\":" + std::to_string(r.completed) +
                       ",\"shed\":" + std::to_string(r.shed) +
                       ",\"errors\":" + std::to_string(r.errors) +
                       ",\"lost\":" + std::to_string(r.lost) +
                       ",\"shed_rate\":" + StrFormat("%.4f", r.shed_rate()) +
                       ",\"p50_ms\":" + StrFormat("%.3f", r.p50()) +
                       ",\"p99_ms\":" + StrFormat("%.3f", r.p99());
  if (extra_ratio >= 0.0) {
    fields += ",\"p99_vs_baseline\":" + StrFormat("%.3f", extra_ratio);
  }
  BenchLine(extra_ratio >= 0.0 ? "isolation" : "shed", tenant, fields);
}

// --------------------------------------------------- the fairness run

void RunFairness() {
  Banner("E14", "multi-tenant fairness over loopback TCP (university)");
  EvalDb eval = MakeUniversity();
  std::vector<std::string> texts = QueryTexts(eval, g_smoke ? 1 : 2);

  // One engine per tenant: separate cache partitions, shared database.
  TenantRegistry tenants;
  const std::vector<std::string> quiet_ids = {"alpha", "beta"};
  for (const std::string& id : quiet_ids) {
    TenantOptions options;
    options.server.workers = 1;
    options.server.admission.max_queue = 16;
    Status added = tenants.AddTenant(
        id, std::make_shared<const KeymanticEngine>(*eval.db), options);
    if (!added.ok()) std::abort();
  }
  {
    // The abusive tenant's quota is deliberately tight: one executing
    // request plus a two-deep queue. Its 10x flood must die at admission,
    // not in its neighbors' latency.
    TenantOptions options;
    options.server.workers = 1;
    options.server.admission.max_queue = 2;
    options.server.aimd.initial_limit = 1.0;
    options.server.aimd.min_limit = 1.0;
    options.server.aimd.max_limit = 2.0;
    Status added = tenants.AddTenant(
        "mars", std::make_shared<const KeymanticEngine>(*eval.db), options);
    if (!added.ok()) std::abort();
  }

  net::NetServerOptions net_options;
  net_options.port = 0;  // ephemeral
  net::NetServer server(tenants, net_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", started.ToString().c_str());
    std::abort();
  }
  const uint16_t port = server.port();
  std::printf("serving %zu tenants on 127.0.0.1:%u\n",
              tenants.TenantIds().size(), port);

  // Warm-up: one sequential closed-loop pass per tenant. Each tenant has
  // its own engine, so each pays its own cold caches — and cold-start
  // costs belong to E13, not a fairness measurement. The pass also lets
  // every tenant's AIMD limiter ramp off its floor before load arrives.
  std::vector<std::string> all_ids = quiet_ids;
  all_ids.push_back("mars");
  for (const std::string& id : all_ids) {
    auto client = net::NetClient::Connect("127.0.0.1", port);
    if (!client.ok() || !(*client)->Hello(id).ok()) std::abort();
    for (size_t i = 0; i < texts.size(); ++i) {
      (void)(*client)->Ask(i + 1, texts[i], 5, DeadlineMs());
    }
  }

  // Calibration: sequential warm Asks through tenant alpha give the mean
  // service time the open-loop rates are derived from.
  double mean_ms = 0.0;
  {
    auto client = net::NetClient::Connect("127.0.0.1", port);
    if (!client.ok() || !(*client)->Hello("alpha").ok()) std::abort();
    const size_t kCalibration = std::min<size_t>(texts.size(), 10);
    int64_t t0 = MonotonicNowNs();
    size_t measured = 0;
    for (size_t i = 0; i < kCalibration; ++i) {
      auto reply = (*client)->Ask(100 + i, texts[i], 5, DeadlineMs());
      if (reply.ok()) ++measured;
    }
    mean_ms = static_cast<double>(MonotonicNowNs() - t0) / 1e6 /
              static_cast<double>(std::max<size_t>(measured, 1));
  }
  // Quiet tenants offer ~half their single-worker capacity; the abusive
  // tenant offers 10x the quiet rate.
  const double quiet_interval_ms = std::max(2.0, 2.0 * mean_ms);
  const double abusive_interval_ms = quiet_interval_ms / 10.0;
  const size_t quiet_count = g_smoke ? 40 : 160;
  const size_t abusive_count = quiet_count * 10;
  std::printf(
      "calibration: mean=%.2fms/query — quiet interval %.2fms (%zu queries), "
      "abusive interval %.2fms (%zu queries)\n",
      mean_ms, quiet_interval_ms, quiet_count, abusive_interval_ms,
      abusive_count);

  // Phase 1 — baseline: both quiet tenants, no abuse.
  std::printf("\n-- baseline (quiet tenants only) --\n");
  std::vector<OpenLoopResult> baseline(quiet_ids.size());
  {
    std::vector<std::thread> clients;
    for (size_t i = 0; i < quiet_ids.size(); ++i) {
      clients.emplace_back([&, i] {
        baseline[i] = RunOpenLoop(port, quiet_ids[i], texts, quiet_count,
                                  quiet_interval_ms);
      });
    }
    for (auto& t : clients) t.join();
  }
  for (size_t i = 0; i < quiet_ids.size(); ++i) {
    ReportTenant("baseline", quiet_ids[i], baseline[i]);
  }

  // Phase 2 — mixed: same quiet traffic plus the 10x abusive tenant.
  std::printf("\n-- mixed (abusive tenant at 10x offered load) --\n");
  std::vector<OpenLoopResult> mixed(quiet_ids.size());
  OpenLoopResult abusive;
  {
    std::vector<std::thread> clients;
    clients.emplace_back([&] {
      abusive = RunOpenLoop(port, "mars", texts, abusive_count,
                            abusive_interval_ms);
    });
    for (size_t i = 0; i < quiet_ids.size(); ++i) {
      clients.emplace_back([&, i] {
        mixed[i] = RunOpenLoop(port, quiet_ids[i], texts, quiet_count,
                               quiet_interval_ms);
      });
    }
    for (auto& t : clients) t.join();
  }

  // The additive floor keeps sub-ms baselines from turning scheduler
  // jitter on a busy CI box into a fairness violation; at realistic
  // baselines the 2x term dominates.
  const double kJitterFloorMs = 10.0;
  for (size_t i = 0; i < quiet_ids.size(); ++i) {
    const double base_p99 = baseline[i].p99();
    const double ratio = base_p99 > 0 ? mixed[i].p99() / base_p99 : 0.0;
    ReportTenant("mixed", quiet_ids[i], mixed[i], ratio);
    Check(mixed[i].p99() <= 2.0 * base_p99 + kJitterFloorMs,
          quiet_ids[i] + " p99 under abuse stays within 2x of baseline (" +
              StrFormat("%.2f", mixed[i].p99()) + "ms vs " +
              StrFormat("%.2f", base_p99) + "ms)");
    Check(mixed[i].shed == 0,
          quiet_ids[i] + " sheds nothing while its neighbor floods");
    Check(mixed[i].lost == 0 && mixed[i].errors == 0,
          quiet_ids[i] + " loses no requests and sees no errors");
  }
  ReportTenant("mixed", "mars", abusive);
  Check(abusive.shed > 0,
        "the abusive tenant's quota sheds (the flood actually overloads it)");
  Check(abusive.lost == 0,
        "every abusive request gets an answer (RESP or typed RTRY)");

  // Per-tenant server-side counters line up with the wire-level view.
  for (const std::string& id : quiet_ids) {
    auto stats = tenants.StatsFor(id);
    if (stats.ok()) {
      Check(stats->shed == 0,
            id + " server-side shed counter is zero (matches the wire)");
    }
  }

  net::NetServerStats net_stats = server.Stats();
  std::printf(
      "\nserver: frames_in=%llu frames_out=%llu queries=%llu "
      "protocol_errors=%llu disconnects=%llu\n",
      static_cast<unsigned long long>(net_stats.frames_in),
      static_cast<unsigned long long>(net_stats.frames_out),
      static_cast<unsigned long long>(net_stats.queries),
      static_cast<unsigned long long>(net_stats.protocol_errors),
      static_cast<unsigned long long>(net_stats.disconnects));
  server.Shutdown();
  tenants.Shutdown();
}

// ------------------------------------------------ the drain-under-load run

/// Phase 3: graceful drain with live traffic and one wedged connection.
void RunDrainUnderLoad() {
  std::printf("\n-- drain (graceful drain under live load + stalled client) --\n");
  EvalDb eval = MakeUniversity();
  std::vector<std::string> texts = QueryTexts(eval, 1);

  TenantRegistry tenants;
  {
    TenantOptions options;
    options.server.workers = 2;
    Status added = tenants.AddTenant(
        "alpha", std::make_shared<const KeymanticEngine>(*eval.db), options);
    if (!added.ok()) std::abort();
  }

  // Small write buffer + small kernel buffer so the stalled client wedges
  // on a few dozen replies; the stall timer evicts it during the drain.
  net::NetServerOptions net_options;
  net_options.port = 0;
  net_options.max_write_buffer_bytes = 4096;
  net_options.so_sndbuf = 4096;
  net_options.write_stall_timeout_ms = 500;
  net::NetServer server(tenants, net_options);
  if (!server.Start().ok()) std::abort();
  const uint16_t port = server.port();

  // Compliant closed-loop clients: Ask until the drain ends the stream. A
  // client-side Ask timeout is a *lost* in-flight response — the failure
  // the drain exists to prevent.
  std::atomic<uint64_t> completed{0}, rejected{0}, lost{0};
  const size_t kClients = 3;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = net::NetClient::Connect("127.0.0.1", port);
      if (!client.ok() || !(*client)->Hello("alpha").ok()) return;
      for (uint64_t id = 1;; ++id) {
        auto reply = (*client)->Ask(id, texts[(c + id) % texts.size()], 5,
                                    DeadlineMs(), /*timeout_ms=*/10'000.0);
        if (reply.ok()) {
          ++completed;
          continue;
        }
        if (reply.status().code() == StatusCode::kDeadlineExceeded) ++lost;
        else ++rejected;  // typed RTRY or the GBYE-bounded disconnect
        return;
      }
    });
  }

  // The stalled client: burst queries, never read a byte. The socket is
  // hand-dialed with a tiny SO_RCVBUF (set *before* connect, so the TCP
  // window is actually small) — otherwise loopback's autotuned ~128 KiB
  // receive queue would swallow every reply and nothing would wedge.
  int staller_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (staller_fd < 0) std::abort();
  int rcvbuf = 2048;
  setsockopt(staller_fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in staller_addr{};
  staller_addr.sin_family = AF_INET;
  staller_addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &staller_addr.sin_addr);
  if (::connect(staller_fd, reinterpret_cast<sockaddr*>(&staller_addr),
                sizeof(staller_addr)) != 0) {
    std::abort();
  }
  net::NetClient staller(staller_fd);
  if (!staller.Hello("alpha").ok()) std::abort();
  for (uint64_t id = 1; id <= 80; ++id) {
    if (!staller.SendQuery(id, texts[id % texts.size()], 5, DeadlineMs())
             .ok()) {
      break;
    }
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const double kDrainDeadlineMs = 5000;
  net::DrainReport report;
  Status drained = server.Drain(kDrainDeadlineMs, &report);
  const bool tenants_drained =
      tenants.DrainFor(std::max(0.0, kDrainDeadlineMs - report.elapsed_ms));
  for (auto& t : clients) t.join();
  staller.Close();
  server.Shutdown();
  tenants.Shutdown();

  const net::NetServerStats stats = server.Stats();
  std::printf(
      "drain: elapsed=%.1fms deadline=%.0fms completed=%d evicted_slow=%llu "
      "drain_rtry=%llu | clients: completed=%llu rejected=%llu lost=%llu\n",
      report.elapsed_ms, kDrainDeadlineMs, report.completed ? 1 : 0,
      static_cast<unsigned long long>(stats.evicted_slow),
      static_cast<unsigned long long>(stats.drain_rtry),
      static_cast<unsigned long long>(completed.load()),
      static_cast<unsigned long long>(rejected.load()),
      static_cast<unsigned long long>(lost.load()));
  BenchLine("drain", "alpha",
            "\"drain_ms\":" + StrFormat("%.1f", report.elapsed_ms) +
                ",\"deadline_ms\":" + StrFormat("%.0f", kDrainDeadlineMs) +
                ",\"completed\":" + std::to_string(report.completed ? 1 : 0) +
                ",\"evicted_slow\":" + std::to_string(stats.evicted_slow) +
                ",\"drain_rtry\":" + std::to_string(stats.drain_rtry) +
                ",\"client_completed\":" + std::to_string(completed.load()) +
                ",\"client_lost\":" + std::to_string(lost.load()));
  Check(drained.ok() && report.completed &&
            report.elapsed_ms <= kDrainDeadlineMs,
        "drain completes inside the deadline (" +
            StrFormat("%.1f", report.elapsed_ms) + "ms of " +
            StrFormat("%.0f", kDrainDeadlineMs) + "ms)");
  Check(tenants_drained, "tenant-side work drains inside the same deadline");
  Check(stats.evicted_slow >= 1,
        "the stalled full-buffer client is evicted by the write-stall timer");
  Check(lost.load() == 0,
        "no compliant client loses an in-flight response during the drain");
  Check(completed.load() > 0, "the drain raced live traffic, not an idle box");
  Check(stats.queries == stats.replies + stats.queries_dropped,
        "terminal-frame accounting reconciles (queries = replies + dropped)");
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchFlags(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  RunFairness();
  RunDrainUnderLoad();
  if (g_failed_checks > 0) {
    std::printf("\n%d CHECK(s) VIOLATED\n", g_failed_checks);
    return 1;
  }
  std::printf("\nall checks passed\n");
  return 0;
}
