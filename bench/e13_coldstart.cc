// E13 — cold-start time: building prepared state from the instance vs
// loading it from a checksummed snapshot (src/snapshot/).
//
// For each database (mondial, the complex-schema evaluation set, plus
// scaling.cc-generated schemas of growing terminology size):
//
//   1. build  — PreparedState::Build from the live instance (metadata
//      extraction, MI weighting, value indexing, phrase vocabulary);
//   2. save   — SaveSnapshot (crash-safe write path), recording file size;
//   3. load   — LoadSnapshot (mmap, checksum validation, decode, verified
//      re-assembly), repeated a few times for a stable median.
//
// Reported per database: build_ms, load_ms, speedup, snapshot bytes, and
// the RSS delta of each path (VmRSS from /proc/self/status). Checks: the
// load path must produce prepared state that re-saves byte-identically
// (bit-exact round trip) and must not be slower than the build path on
// any non-trivial schema.
//
// Output: `BENCH {"bench":"e13",...}` lines for the CI bench baseline and
// explicit CHECK lines; violated checks exit non-zero.
//
// Flags: --smoke (CI-sized), --deadline_ms / --trace (accepted for
// uniformity with the other harnesses, unused).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/prepared_state.h"
#include "datasets/scaling.h"
#include "snapshot/snapshot.h"

namespace {

using namespace km;
using namespace km::bench;

bool g_smoke = false;
int g_failed_checks = 0;

void BenchLine(const std::string& experiment, const std::string& db,
               const std::string& fields) {
  std::printf("BENCH {\"bench\":\"e13\",\"experiment\":\"%s\",\"db\":\"%s\",%s}\n",
              experiment.c_str(), db.c_str(), fields.c_str());
}

void Check(bool ok, const std::string& what) {
  std::printf("CHECK %s: %s\n", ok ? "ok" : "VIOLATED", what.c_str());
  if (!ok) ++g_failed_checks;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Resident set size in KiB (VmRSS from /proc/self/status); 0 when the
/// proc file is unavailable (non-Linux).
long RssKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::atol(line.c_str() + 6);
    }
  }
  return 0;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct ColdStartRow {
  double build_ms = 0;
  double save_ms = 0;
  double load_ms = 0;
  size_t snapshot_bytes = 0;
  long build_rss_delta_kb = 0;
  long load_rss_delta_kb = 0;
  bool round_trip_exact = false;
};

ColdStartRow MeasureColdStart(const Database& db, const std::string& name) {
  ColdStartRow row;
  const std::string path = "/tmp/km_e13_" + name + ".snap";

  const long rss_before_build = RssKb();
  const double t_build = NowMs();
  auto built = PreparedState::Build(db, PrepareOptions{});
  row.build_ms = NowMs() - t_build;
  row.build_rss_delta_kb = RssKb() - rss_before_build;

  const double t_save = NowMs();
  Status saved = SaveSnapshot(*built, path);
  row.save_ms = NowMs() - t_save;
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed for %s: %s\n", name.c_str(),
                 saved.ToString().c_str());
    ++g_failed_checks;
    return row;
  }
  const std::string bytes = ReadFileBytes(path);
  row.snapshot_bytes = bytes.size();

  // Median of several loads: the load path is fast enough that one sample
  // is noise-dominated.
  const int load_reps = g_smoke ? 3 : 7;
  std::vector<double> load_samples;
  std::shared_ptr<const PreparedState> loaded_state;
  const long rss_before_load = RssKb();
  for (int i = 0; i < load_reps; ++i) {
    const double t_load = NowMs();
    auto loaded = LoadSnapshot(path);
    load_samples.push_back(NowMs() - t_load);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed for %s: %s\n", name.c_str(),
                   loaded.status().ToString().c_str());
      ++g_failed_checks;
      return row;
    }
    loaded_state = *loaded;
  }
  row.load_rss_delta_kb = RssKb() - rss_before_load;
  std::sort(load_samples.begin(), load_samples.end());
  row.load_ms = load_samples[load_samples.size() / 2];

  // Bit-exact round trip: re-saving the loaded state reproduces the file.
  const std::string resave = path + ".resave";
  if (SaveSnapshot(*loaded_state, resave).ok()) {
    row.round_trip_exact = ReadFileBytes(resave) == bytes;
  }
  std::remove(resave.c_str());
  std::remove(path.c_str());
  return row;
}

void ReportRow(const std::string& db_name, const ColdStartRow& row,
               size_t terminology_size) {
  std::printf(
      "  %-14s |T(D)|=%5zu  build %8.1f ms  load %7.2f ms  (%5.1fx)  "
      "%8zu bytes  rss build/load %6ld/%6ld KiB\n",
      db_name.c_str(), terminology_size, row.build_ms, row.load_ms,
      row.load_ms > 0 ? row.build_ms / row.load_ms : 0.0, row.snapshot_bytes,
      row.build_rss_delta_kb, row.load_rss_delta_kb);
  char fields[512];
  std::snprintf(fields, sizeof(fields),
                "\"terminology\":%zu,\"build_ms\":%.2f,\"save_ms\":%.2f,"
                "\"load_ms\":%.3f,\"speedup\":%.2f,\"snapshot_bytes\":%zu,"
                "\"build_rss_kb\":%ld,\"load_rss_kb\":%ld",
                terminology_size, row.build_ms, row.save_ms, row.load_ms,
                row.load_ms > 0 ? row.build_ms / row.load_ms : 0.0,
                row.snapshot_bytes, row.build_rss_delta_kb,
                row.load_rss_delta_kb);
  BenchLine("coldstart", db_name, fields);
  Check(row.round_trip_exact, db_name + ": save->load->save is byte-identical");
  // 1.25x tolerance: on the synthetic scaling schemas the verified
  // re-assembly dominates the load path and both sides land within ~10% of
  // each other, so a strict inequality would be noise-flaky on shared CI.
  Check(row.load_ms <= row.build_ms * 1.25,
        db_name + ": snapshot load is not materially slower than a full build");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  ParseBenchFlags(&argc, argv);
  Banner("E13", "cold start: instance build vs checksummed snapshot load");

  {
    EvalDb mondial = MakeMondial();
    ColdStartRow row = MeasureColdStart(*mondial.db, "mondial");
    ReportRow("mondial", row, mondial.db->schema().TerminologySize());
  }

  // Schema scaling: cold-start advantage as |T(D)| grows.
  const std::vector<size_t> relation_counts =
      g_smoke ? std::vector<size_t>{20, 60} : std::vector<size_t>{20, 60, 160};
  for (size_t relations : relation_counts) {
    ScalingOptions opts;
    opts.num_relations = relations;
    opts.attributes_per_relation = 6;
    auto db = BuildScalingDatabase(opts);
    if (!db.ok()) {
      std::fprintf(stderr, "scaling build failed: %s\n",
                   db.status().ToString().c_str());
      return 1;
    }
    const std::string name = "scaling_r" + std::to_string(relations);
    ColdStartRow row = MeasureColdStart(*db, name);
    ReportRow(name, row, db->schema().TerminologySize());
  }

  if (g_failed_checks > 0) {
    std::printf("\n%d check(s) VIOLATED\n", g_failed_checks);
    return 1;
  }
  std::printf("\nall checks ok\n");
  return 0;
}
