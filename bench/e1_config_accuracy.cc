// E1 — cumulative top-k accuracy of configurations (forward step).
//
// Reproduces the shape of the paper's "accuracy of the a-priori forward
// analysis" figure: for each database, the fraction of queries whose gold
// configuration appears in the top-k ranked configurations, k ∈ {1,2,3,5,10}.
// Expected shape: near-perfect on the small/complex-vocabulary databases
// (university, mondial), lower on the large flat one (dblp).

#include "bench/bench_common.h"

int main() {
  using namespace km;
  using namespace km::bench;

  Banner("E1", "cumulative top-k accuracy of configurations");
  const std::vector<size_t> ks = {1, 2, 3, 5, 10};

  for (EvalDb& eval : MakeAllDbs()) {
    KeymanticEngine engine(*eval.db);
    SchemaGraph unit_graph(engine.terminology(), eval.db->schema());
    auto workload =
        MakeWorkload(eval, engine.terminology(), unit_graph, /*per_template=*/15);

    TopKAccuracy acc;
    for (const WorkloadQuery& q : workload) {
      auto configs = engine.Configurations(q.keywords, 10);
      acc.Add(configs.ok() ? RankOfConfiguration(*configs, q.gold_config) : -1);
    }
    std::printf("%s\n", FormatAccuracyRow(eval.name, acc, ks).c_str());
  }
  std::printf("\n(higher is better; expect university ≈ mondial > dblp)\n");
  return 0;
}
