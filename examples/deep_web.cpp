// The deep-web / no-instance-access scenario: the paper's headline use
// case.
//
// Simulates querying a source whose *instance* is inaccessible (a federated
// source or web database exposing only its schema): the engine is built
// with instance vocabulary, MI statistics and phrase-vocabulary extraction
// all disabled, so every keyword→term match relies purely on metadata —
// schema-name similarity, the synonym thesaurus and the value-shape
// recognizers. The generated SQL is then executed against the full
// database, playing the role of the remote source answering the query.
//
// Run:  ./build/examples/deep_web

#include <cstdio>

#include "core/keymantic.h"
#include "datasets/university.h"
#include "engine/executor.h"

int main() {
  auto db = km::BuildUniversityDatabase();
  if (!db.ok()) {
    std::fprintf(stderr, "failed to build database: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  km::EngineOptions opts;
  opts.weights.use_instance_vocabulary = false;  // no full-text index
  opts.use_mi_weights = false;                   // no join statistics
  opts.build_phrase_vocabulary = false;          // no value vocabulary
  km::KeymanticEngine engine(*db, opts);
  std::printf("engine built with metadata only (no instance access)\n\n");

  km::Executor exec(*db);  // plays the remote source

  // These queries exercise the three metadata signals:
  //   shape recognizers  — "4631234" is phone-shaped, "IT" code-shaped,
  //                        "2012-04-05" date-shaped;
  //   schema similarity  — "department", "email";
  //   thesaurus          — "nation" ~ country, "person" ~ people.
  const char* kQueries[] = {
      "Vokram IT",
      "person 4631234",
      "email Reniets",
      "department address",
      "projects 2011",
      "nation Trento",
  };

  for (const char* query : kQueries) {
    std::printf("──────────────────────────────────────────────────\n");
    std::printf("query: \"%s\"\n", query);
    auto results = engine.Search(query, 3);
    if (!results.ok()) {
      std::printf("  no answer: %s\n", results.status().ToString().c_str());
      continue;
    }
    std::vector<std::string> keywords =
        km::Tokenize(query, engine.tokenizer_options());
    for (size_t i = 0; i < results->size(); ++i) {
      const km::Explanation& ex = (*results)[i];
      std::printf("  #%zu (score %.3f): %s\n", i + 1, ex.score,
                  ex.configuration.ToString(keywords, engine.terminology()).c_str());
    }
    // "Send" the best SQL to the remote source.
    auto rs = exec.Execute((*results)[0].sql);
    if (rs.ok()) {
      std::printf("  remote source returns %zu tuple(s)\n", rs->size());
    }
  }
  return 0;
}
