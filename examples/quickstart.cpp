// Quickstart: the paper's running example.
//
// Builds the university database of Fig. 2, constructs a KeymanticEngine
// and answers the keyword query "Vokram IT", printing the ranked SQL
// explanations. Then it executes the best explanation on the in-memory
// engine to show actual tuples.
//
// Run:  ./build/examples/quickstart [keyword query...]

#include <cstdio>
#include <string>

#include "core/keymantic.h"
#include "datasets/university.h"
#include "engine/executor.h"

int main(int argc, char** argv) {
  auto db = km::BuildUniversityDatabase();
  if (!db.ok()) {
    std::fprintf(stderr, "failed to build database: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  std::printf("university database: %zu relations, %zu tuples, %zu terms\n",
              db->schema().relations().size(), db->TotalRows(),
              db->schema().TerminologySize());

  km::EngineOptions options;
  km::KeymanticEngine engine(*db, options);

  std::string query = "Vokram IT";
  if (argc > 1) {
    query.clear();
    for (int i = 1; i < argc; ++i) {
      if (i > 1) query += " ";
      query += argv[i];
    }
  }
  std::printf("\nkeyword query: \"%s\"\n\n", query.c_str());

  auto results = engine.Search(query, 5);
  if (!results.ok()) {
    std::fprintf(stderr, "search failed: %s\n", results.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> keywords = km::Tokenize(query, engine.tokenizer_options());
  for (size_t i = 0; i < results->size(); ++i) {
    std::printf("=== explanation #%zu ===\n%s\n\n", i + 1,
                (*results)[i].ToString(keywords, engine.terminology()).c_str());
  }

  if (!results->empty()) {
    km::Executor exec(*db);
    auto rs = exec.Execute((*results)[0].sql);
    if (rs.ok()) {
      std::printf("executing the top explanation: %zu tuple(s)\n", rs->size());
      for (size_t r = 0; r < rs->rows.size() && r < 5; ++r) {
        std::string line;
        for (size_t c = 0; c < rs->header.size(); ++c) {
          if (c > 0) line += " | ";
          line += rs->header[c].ToString() + "=" + rs->rows[r][c].ToString();
        }
        std::printf("  %s\n", line.c_str());
      }
    }
  }
  return 0;
}
