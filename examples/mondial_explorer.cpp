// Geography exploration: keyword search over the Mondial-like database.
//
// Demonstrates the system on a complex schema (24 relations, dense
// foreign-key fabric, multiple join paths between most concepts): the
// scenario where ranking interpretations is hardest. Runs a batch of
// representative queries, prints the top explanation of each with its
// result tuples, and then shows how the ranked list of *interpretations*
// looks for one deliberately ambiguous query.
//
// Run:  ./build/examples/mondial_explorer

#include <cstdio>
#include <set>

#include "core/keymantic.h"
#include "datasets/mondial.h"
#include "engine/executor.h"

namespace {

void RunQuery(const km::KeymanticEngine& engine, const km::Executor& exec,
              const std::string& query) {
  std::printf("──────────────────────────────────────────────────\n");
  std::printf("query: \"%s\"\n", query.c_str());
  auto results = engine.Search(query, 3);
  if (!results.ok()) {
    std::printf("  no answer: %s\n", results.status().ToString().c_str());
    return;
  }
  std::vector<std::string> keywords =
      km::Tokenize(query, engine.tokenizer_options());
  for (size_t i = 0; i < results->size(); ++i) {
    const km::Explanation& ex = (*results)[i];
    std::printf("  #%zu (score %.3f): %s\n", i + 1, ex.score,
                ex.configuration.ToString(keywords, engine.terminology()).c_str());
    if (i == 0) {
      auto rs = exec.Execute(ex.sql);
      if (rs.ok()) {
        std::printf("     → %zu tuple(s)", rs->size());
        if (!rs->empty()) {
          std::printf("; first: ");
          for (size_t c = 0; c < rs->header.size() && c < 4; ++c) {
            if (c > 0) std::printf(" | ");
            std::printf("%s=%s", rs->header[c].ToString().c_str(),
                        rs->rows[0][c].ToString().c_str());
          }
        }
        std::printf("\n");
      }
    }
  }
}

}  // namespace

int main() {
  auto db = km::BuildMondialDatabase();
  if (!db.ok()) {
    std::fprintf(stderr, "failed to build mondial: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  std::printf("mondial database: %zu relations, %zu foreign keys, %zu tuples\n",
              db->schema().relations().size(), db->schema().foreign_keys().size(),
              db->TotalRows());

  km::KeymanticEngine engine(*db);
  km::Executor exec(*db);

  // Pull a few real values out of the instance so the demo queries always
  // hit data regardless of generator changes.
  const km::Table* city = db->FindTable("CITY");
  std::string some_city = city->rows()[0][1].ToString();
  const km::Table* river = db->FindTable("RIVER");
  std::string some_river = river->rows()[0][0].ToString();

  RunQuery(engine, exec, "Italy");
  RunQuery(engine, exec, "capital Spain");
  RunQuery(engine, exec, some_city + " population");
  RunQuery(engine, exec, some_river);
  RunQuery(engine, exec, "Christianity Italy");
  RunQuery(engine, exec, "NATO member");

  // Show the backward step explicitly: interpretations of one ambiguous
  // configuration (a country name with a city name — joinable directly via
  // CITY.Country or through PROVINCE).
  std::printf("──────────────────────────────────────────────────\n");
  std::printf("interpretations of city↔country (multiple join paths):\n");
  const km::Terminology& t = engine.terminology();
  km::Configuration config;
  config.term_for_keyword = {*t.DomainTerm("CITY", "Name"),
                             *t.DomainTerm("COUNTRY", "Name")};
  auto interps = engine.Interpretations(config, 5);
  if (interps.ok()) {
    for (size_t i = 0; i < interps->size(); ++i) {
      const km::Interpretation& interp = (*interps)[i];
      std::printf("  tree #%zu cost=%.3f, relations:", i + 1, interp.cost);
      std::set<std::string> rels;
      for (size_t n : interp.nodes) rels.insert(t.term(n).relation);
      for (const std::string& r : rels) std::printf(" %s", r.c_str());
      std::printf("\n");
    }
  }
  return 0;
}
