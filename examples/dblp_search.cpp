// Bibliography search: keyword search over the DBLP-like database, plus
// feedback-driven HMM training.
//
// Demonstrates two things on a large flat-schema instance:
//   1. typical bibliographic lookups (author, title words, venue + year);
//   2. the feedback loop: the engine's answers are "accepted by the user"
//      (simulated), fed to the HmmTrainer, and the trained HMM is installed
//      as an alternative forward step whose suggestions are then compared
//      with the metadata approach.
//
// Run:  ./build/examples/dblp_search

#include <cstdio>

#include "core/keymantic.h"
#include "datasets/dblp.h"
#include "engine/executor.h"
#include "hmm/model_builder.h"
#include "workload/workload.h"

int main() {
  km::DblpOptions db_opts;
  db_opts.persons = 1500;
  db_opts.articles = 2000;
  db_opts.inproceedings = 3000;
  auto db = km::BuildDblpDatabase(db_opts);
  if (!db.ok()) {
    std::fprintf(stderr, "failed to build dblp: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("dblp database: %zu relations, %zu tuples\n",
              db->schema().relations().size(), db->TotalRows());

  km::KeymanticEngine engine(*db);
  km::Executor exec(*db);

  // Realistic lookups seeded from the instance.
  const km::Table* person = db->FindTable("PERSON");
  std::string author = person->rows()[7][1].ToString();
  const km::Table* inproc = db->FindTable("INPROCEEDINGS");
  std::string title = inproc->rows()[3][1].ToString();

  for (const std::string& query :
       {author, std::string("ARTICLE ") + author, title,
        std::string("SIGMOD 2019"), std::string("PHDTHESIS ") + author}) {
    std::printf("──────────────────────────────────────────────────\n");
    std::printf("query: \"%s\"\n", query.c_str());
    auto results = engine.Search(query, 2);
    if (!results.ok()) {
      std::printf("  no answer: %s\n", results.status().ToString().c_str());
      continue;
    }
    std::vector<std::string> keywords =
        km::Tokenize(query, engine.tokenizer_options());
    for (size_t i = 0; i < results->size(); ++i) {
      const km::Explanation& ex = (*results)[i];
      auto count = exec.Count(ex.sql);
      std::printf("  #%zu (score %.3f, %zu tuples): %s\n", i + 1, ex.score,
                  count.ok() ? *count : 0,
                  ex.configuration.ToString(keywords, engine.terminology()).c_str());
    }
  }

  // Feedback loop: accept the engine's top configurations as supervision
  // and train the HMM forward step on them.
  std::printf("──────────────────────────────────────────────────\n");
  std::printf("training the HMM forward step from accepted answers...\n");
  km::Terminology terminology(db->schema());
  km::SchemaGraph graph(terminology, db->schema());
  km::WorkloadOptions wopts;
  wopts.queries_per_template = 15;
  km::WorkloadGenerator gen(*db, terminology, graph, wopts);
  auto training = gen.Generate(km::DblpTemplates());
  if (!training.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 training.status().ToString().c_str());
    return 1;
  }
  km::HmmTrainer trainer(terminology, db->schema());
  for (const km::WorkloadQuery& q : *training) {
    trainer.AddSequence(q.gold_config.term_for_keyword);
  }
  engine.SetTrainedHmm(trainer.Train());
  std::printf("trained on %zu accepted queries\n", trainer.sequence_count());

  km::EngineOptions hmm_opts;
  hmm_opts.forward_mode = km::ForwardMode::kHmmTrained;
  km::KeymanticEngine hmm_engine(*db, hmm_opts);
  hmm_engine.SetTrainedHmm(trainer.Train());

  std::string query = author + " 2019";
  std::vector<std::string> keywords = km::Tokenize(query, engine.tokenizer_options());
  auto metadata_configs = engine.Configurations(keywords, 3);
  auto hmm_configs = hmm_engine.Configurations(keywords, 3);
  std::printf("query \"%s\":\n", query.c_str());
  if (metadata_configs.ok() && !metadata_configs->empty()) {
    std::printf("  metadata forward: %s\n",
                (*metadata_configs)[0].ToString(keywords, terminology).c_str());
  }
  if (hmm_configs.ok() && !hmm_configs->empty()) {
    std::printf("  trained HMM:      %s\n",
                (*hmm_configs)[0].ToString(keywords, terminology).c_str());
  }
  return 0;
}
