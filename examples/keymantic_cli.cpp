// Interactive keyword-search shell over the bundled databases.
//
//   ./build/examples/keymantic_cli [--db=university|mondial|dblp|imdb]
//                                  [--metadata-only] [--k=N]
//                                  [--explain] [--trace-json=FILE]
//                                  [--timeout_ms=N] [--retries=N]
//                                  [--max_inflight=N]
//                                  [--save_snapshot=FILE] [--load_snapshot=FILE]
//                                  [--serve=PORT] [--tenant=ID=SNAPSHOT]...
//                                  [--drain_timeout_ms=N]
//                                  ["one-shot query"]
//
// Snapshot flags (src/snapshot/): --save_snapshot serializes the prepared
// engine state (crash-safely) after startup; --load_snapshot cold-starts
// from a snapshot instead of scanning the instance — the shell prints the
// cold-start time either way, so the speedup is directly visible. Answers
// are bit-identical between the two paths (the snapshot tests prove it;
// `--explain` output of a one-shot query is a quick manual check).
//
// The serving flags route queries through the overload-protected
// EngineServer (src/serve/) instead of calling the engine directly:
//   --timeout_ms=N     per-query deadline, burned from submit (queue wait
//                      counts); the engine degrades rather than overruns
//   --retries=N        retry shed/unavailable answers up to N times with
//                      budgeted, decorrelated-jitter backoff (common/retry.h)
//   --max_inflight=N   fix the concurrency limit and queue bound; an
//                      executor circuit breaker guards SQL probing
//
// Serving mode (src/net/): --serve=PORT skips the interactive shell and
// runs the multi-tenant network front end on 127.0.0.1:PORT (PORT=0 picks
// an ephemeral port, printed on startup). Each --tenant=ID=SNAPSHOT flag
// registers one tenant whose engine is assembled from a PR-7 snapshot of
// the --db database (all tenants share that database instance; each gets
// its own EngineServer quota and cache partition). With no --tenant flag
// the --db engine itself serves as the single tenant, named after the
// database. The server runs until stdin reaches EOF (Ctrl-D) or a
// SIGTERM/SIGINT arrives (delivered through a self-pipe, so the shutdown
// path is ordinary poll code, not signal-handler code), then drains
// gracefully: the front end stops accepting, answers parked queries with
// RTRY, flushes every outbox and says GBYE; the tenants finish admitted
// work — all within --drain_timeout_ms (default 5000), after which
// stragglers are evicted. Clients speak the length-prefixed frame
// protocol of src/net/protocol.h.
//
// With a positional argument the shell answers that one query and exits —
// the scriptable form. --explain prints the EXPLAIN answer after each
// query: per-keyword weight provenance (which bonus fired: synonym, regex
// pattern, instance hit, contextualization) plus the span tree of the
// pipeline stages. --trace-json writes the same trace as Chrome
// trace_event JSON (open in about:tracing); it implies tracing on.
//
// Type keyword queries at the prompt. Commands:
//   \schema          list relations and attributes
//   \sql N           show the full SQL of answer N of the last query
//   \run N           execute answer N and print its tuples (up to 10)
//   \csv N           dump answer N's result as CSV
//   \accept N        positive feedback: train the HMM on answer N's
//                    configuration and adapt the ranker confidences
//   \reject          negative feedback on the last top answer
//   \explain WORD    show the strongest term matches of one keyword
//   \stats           feedback state and current engine configuration
//   \quit            exit
//
// Feedback drives the FeedbackManager: after enough accepted answers the
// engine switches to the DST combination of the metadata ranker and the
// trained HMM, exactly as the paper family describes.

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "common/retry.h"
#include "common/strings.h"
#include "core/feedback.h"
#include "core/keymantic.h"
#include "net/server.h"
#include "serve/circuit_breaker.h"
#include "serve/engine_server.h"
#include "serve/tenant.h"
#include "snapshot/snapshot.h"
#include "datasets/dblp.h"
#include "datasets/imdb.h"
#include "datasets/mondial.h"
#include "datasets/university.h"
#include "engine/executor.h"
#include "relational/csv.h"

namespace {

using namespace km;

StatusOr<Database> BuildByName(const std::string& name) {
  if (name == "university") return BuildUniversityDatabase();
  if (name == "mondial") return BuildMondialDatabase();
  if (name == "imdb") return BuildImdbDatabase();
  if (name == "dblp") {
    DblpOptions opts;
    opts.persons = 1000;
    opts.articles = 1500;
    opts.inproceedings = 2000;
    return BuildDblpDatabase(opts);
  }
  return Status::InvalidArgument("unknown database '" + name +
                                 "' (use university|mondial|dblp|imdb)");
}

// Self-pipe for SIGTERM/SIGINT: the handler does the one async-signal-safe
// thing (write a byte); the serve loop sees the pipe readable and runs the
// ordinary drain path.
int g_signal_pipe[2] = {-1, -1};

void OnTerminateSignal(int) {
  const char byte = 1;
  (void)!write(g_signal_pipe[1], &byte, 1);
}

void PrintSchema(const Database& db) {
  for (const RelationSchema& r : db.schema().relations()) {
    std::printf("  %s(", r.name().c_str());
    for (size_t a = 0; a < r.arity(); ++a) {
      if (a > 0) std::printf(", ");
      std::printf("%s", r.attribute(a).name.c_str());
      if (r.attribute(a).is_primary_key) std::printf("*");
    }
    std::printf(")  [%zu rows]\n", db.FindTable(r.name())->size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_name = "university";
  bool metadata_only = false;
  bool explain = false;
  std::string trace_json_path;
  std::string one_shot;
  size_t k = 5;
  double timeout_ms = 0;
  int retries = 0;
  size_t max_inflight = 0;
  std::string save_snapshot_path;
  std::string load_snapshot_path;
  int serve_port = -1;  // >= 0 turns on the network front end
  double drain_timeout_ms = 5000;
  std::vector<std::pair<std::string, std::string>> tenant_specs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--db=", 0) == 0) db_name = arg.substr(5);
    else if (arg.rfind("--save_snapshot=", 0) == 0)
      save_snapshot_path = arg.substr(16);
    else if (arg.rfind("--load_snapshot=", 0) == 0)
      load_snapshot_path = arg.substr(16);
    else if (arg.rfind("--serve=", 0) == 0) {
      serve_port = std::stoi(arg.substr(8));
      if (serve_port < 0 || serve_port > 65535) {
        std::fprintf(stderr, "--serve expects a port in [0, 65535]\n");
        return 2;
      }
    } else if (arg.rfind("--tenant=", 0) == 0) {
      std::string spec = arg.substr(9);
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        std::fprintf(stderr, "--tenant expects ID=SNAPSHOT, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      tenant_specs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    }
    else if (arg == "--metadata-only") metadata_only = true;
    else if (arg == "--explain") explain = true;
    else if (arg.rfind("--trace-json=", 0) == 0) trace_json_path = arg.substr(13);
    else if (arg.rfind("--k=", 0) == 0) k = std::stoul(arg.substr(4));
    else if (arg.rfind("--drain_timeout_ms=", 0) == 0)
      drain_timeout_ms = std::stod(arg.substr(19));
    else if (arg.rfind("--timeout_ms=", 0) == 0) timeout_ms = std::stod(arg.substr(13));
    else if (arg.rfind("--retries=", 0) == 0) retries = std::stoi(arg.substr(10));
    else if (arg.rfind("--max_inflight=", 0) == 0)
      max_inflight = std::stoul(arg.substr(15));
    else if (arg.rfind("--", 0) != 0) one_shot = arg;
    else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  auto db = BuildByName(db_name);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %s: %zu relations, %zu tuples%s\n", db_name.c_str(),
              db->schema().relations().size(), db->TotalRows(),
              metadata_only ? " (metadata-only mode)" : "");

  EngineOptions base_options;
  if (metadata_only) {
    base_options.weights.use_instance_vocabulary = false;
    base_options.use_mi_weights = false;
    base_options.build_phrase_vocabulary = false;
  }
  base_options.explain = explain;
  base_options.trace = explain || !trace_json_path.empty();

  const bool serve_mode = timeout_ms > 0 || retries > 0 || max_inflight > 0;
  CircuitBreaker breaker("executor");
  if (serve_mode) base_options.execution_gate = &breaker;

  EngineServerOptions server_options;
  server_options.default_deadline_ms = timeout_ms;
  if (max_inflight > 0) {
    server_options.aimd.initial_limit = static_cast<double>(max_inflight);
    server_options.aimd.max_limit = static_cast<double>(max_inflight);
    server_options.admission.max_queue = 2 * max_inflight;
  }
  RetryOptions retry_options;
  retry_options.max_attempts = retries + 1;
  RetryPolicy retry_policy(retry_options);
  uint64_t request_counter = 0;

  // With --load_snapshot the prepared state comes off disk; every engine
  // (re)build then assembles around it instead of rescanning the instance.
  std::shared_ptr<const PreparedState> loaded_state;
  if (!load_snapshot_path.empty()) {
    const auto t0 = std::chrono::steady_clock::now();
    auto loaded = LoadSnapshot(load_snapshot_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "snapshot load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    loaded_state = *loaded;
    const double load_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("snapshot %s loaded in %.1f ms\n", load_snapshot_path.c_str(),
                load_ms);
  }

  std::unique_ptr<KeymanticEngine> engine;
  std::unique_ptr<EngineServer> server;
  // (Re)builds the engine — and, in serve mode, the server wrapping it.
  // The old server must go first: its workers reference the old engine.
  auto rebuild = [&](const EngineOptions& opts) {
    server.reset();
    if (loaded_state != nullptr) {
      auto assembled = KeymanticEngine::FromPreparedState(*db, loaded_state, opts);
      if (assembled.ok()) {
        engine = std::move(*assembled);
      } else {
        std::fprintf(stderr,
                     "snapshot state incompatible with these options (%s); "
                     "rebuilding from the instance\n",
                     assembled.status().ToString().c_str());
        engine = std::make_unique<KeymanticEngine>(*db, opts);
      }
    } else {
      engine = std::make_unique<KeymanticEngine>(*db, opts);
    }
    if (serve_mode) server = std::make_unique<EngineServer>(*engine, server_options);
  };
  {
    const auto t0 = std::chrono::steady_clock::now();
    rebuild(base_options);
    const double cold_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("cold start: %.1f ms (%s)\n", cold_ms,
                loaded_state != nullptr ? "assembled from snapshot"
                                        : "full build from instance");
  }

  if (!save_snapshot_path.empty()) {
    const auto t0 = std::chrono::steady_clock::now();
    Status saved =
        SaveSnapshot(*engine->prepared_state(), save_snapshot_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "snapshot save failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    const double save_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("snapshot saved to %s in %.1f ms\n", save_snapshot_path.c_str(),
                save_ms);
  }

  // --serve: hand the engine(s) to the multi-tenant network front end and
  // run until stdin closes. Tenants come from --tenant=ID=SNAPSHOT specs
  // (assembled against the --db database); with none, the engine built
  // above serves as the single tenant named after the database.
  if (serve_port >= 0) {
    server.reset();  // its workers reference the engine we may hand off
    TenantRegistry tenants;
    if (tenant_specs.empty()) {
      std::shared_ptr<const KeymanticEngine> shared = std::move(engine);
      Status added = tenants.AddTenant(db_name, std::move(shared));
      if (!added.ok()) {
        std::fprintf(stderr, "tenant %s: %s\n", db_name.c_str(),
                     added.ToString().c_str());
        return 1;
      }
      std::printf("tenant %s: the %s engine built above\n", db_name.c_str(),
                  db_name.c_str());
    }
    for (const auto& [id, snapshot] : tenant_specs) {
      const auto t0 = std::chrono::steady_clock::now();
      Status added = tenants.AddTenantFromSnapshot(id, *db, snapshot);
      if (!added.ok()) {
        std::fprintf(stderr, "tenant %s: %s\n", id.c_str(),
                     added.ToString().c_str());
        return 1;
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      std::printf("tenant %s: assembled from %s in %.1f ms\n", id.c_str(),
                  snapshot.c_str(), ms);
    }

    net::NetServerOptions net_options;
    net_options.port = static_cast<uint16_t>(serve_port);
    net::NetServer net_server(tenants, net_options);
    Status started = net_server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "serve failed: %s\n", started.ToString().c_str());
      return 1;
    }
    std::printf(
        "serving %zu tenant(s) on 127.0.0.1:%u — Ctrl-D or SIGTERM to drain\n",
        tenants.TenantIds().size(), net_server.port());
    std::fflush(stdout);

    // Block on stdin + the signal self-pipe; either one ends serving and
    // starts the graceful drain.
    if (pipe(g_signal_pipe) != 0) {
      std::fprintf(stderr, "signal pipe failed: %s\n", std::strerror(errno));
      return 1;
    }
    std::signal(SIGTERM, OnTerminateSignal);
    std::signal(SIGINT, OnTerminateSignal);
    const char* stop_reason = nullptr;
    while (stop_reason == nullptr) {
      struct pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0},
                              {g_signal_pipe[0], POLLIN, 0}};
      if (poll(fds, 2, -1) < 0) {
        if (errno == EINTR) continue;  // the pipe byte is already in flight
        stop_reason = "poll error";
        break;
      }
      if (fds[1].revents != 0) {
        stop_reason = "signal";
      } else if (fds[0].revents != 0) {
        char buf[4096];
        const ssize_t n = read(STDIN_FILENO, buf, sizeof buf);
        if (n <= 0) stop_reason = "stdin closed";  // otherwise: input ignored
      }
    }
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    close(g_signal_pipe[0]);
    close(g_signal_pipe[1]);

    // Graceful drain, one shared deadline: first the front end (stop
    // accepting, RTRY parked queries, flush, GBYE), then the tenants'
    // admitted work; Shutdown() mops up whatever missed the window.
    std::printf("%s — draining (deadline %.0f ms)\n", stop_reason,
                drain_timeout_ms);
    std::fflush(stdout);
    const auto drain_t0 = std::chrono::steady_clock::now();
    net::DrainReport drain_report;
    Status drained = net_server.Drain(drain_timeout_ms, &drain_report);
    if (!drained.ok()) {
      std::fprintf(stderr, "drain: %s\n", drained.ToString().c_str());
    }
    const double front_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - drain_t0)
                                .count();
    const bool tenants_drained =
        tenants.DrainFor(std::max(0.0, drain_timeout_ms - front_ms));
    net_server.Shutdown();
    tenants.Shutdown();
    net::NetServerStats net_stats = net_server.Stats();
    std::printf(
        "drained in %.1f ms (%s, %llu connection(s) evicted); served %llu "
        "queries over %llu connections\n",
        drain_report.elapsed_ms,
        drain_report.completed && tenants_drained ? "clean" : "deadline hit",
        static_cast<unsigned long long>(drain_report.evicted),
        static_cast<unsigned long long>(net_stats.queries),
        static_cast<unsigned long long>(net_stats.accepted));
    return 0;
  }

  // Answers through the serving layer when enabled: deadline from submit,
  // budgeted backoff on shed/unavailable answers.
  auto answer = [&](const std::string& query) -> StatusOr<AnswerResult> {
    if (server == nullptr) return engine->Answer(query, k);
    RetrySchedule schedule = retry_policy.MakeSchedule(request_counter++);
    retry_policy.OnRequest();
    int attempts = 0;
    while (true) {
      StatusOr<AnswerResult> result = server->Submit(query, k).get();
      ++attempts;
      if (result.ok() || !retry_policy.ShouldRetry(result.status(), attempts)) {
        return result;
      }
      double backoff_ms =
          schedule.NextBackoffMs(SuggestedRetryAfterMs(result.status()));
      std::printf("  %s; retrying in %.0fms (attempt %d/%d)\n",
                  result.status().ToString().c_str(), backoff_ms, attempts + 1,
                  retry_options.max_attempts);
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(backoff_ms * 1000)));
    }
  };

  Executor exec(*db);
  Terminology terminology(db->schema());
  FeedbackManager feedback(terminology, db->schema());

  std::vector<Explanation> last;
  std::vector<std::string> last_keywords;

  // Answers one query, printing the ranked answers and — when asked — the
  // EXPLAIN rendering and the Chrome trace file. Returns false on error.
  auto answer_query = [&](const std::string& query) {
    auto result = answer(query);
    if (!result.ok()) {
      std::printf("no answer: %s\n", result.status().ToString().c_str());
      last.clear();
      return false;
    }
    last = result->explanations;
    last_keywords = Tokenize(query, engine->tokenizer_options());
    for (size_t i = 0; i < last.size(); ++i) {
      auto count = exec.Count(last[i].sql);
      std::printf("#%zu (score %.3f, %zu tuples)  %s\n", i + 1, last[i].score,
                  count.ok() ? *count : 0,
                  last[i]
                      .configuration.ToString(last_keywords, engine->terminology())
                      .c_str());
    }
    if (explain) std::printf("%s", result->Explain().c_str());
    if (!trace_json_path.empty() && result->trace != nullptr) {
      std::string json = result->trace->ChromeTraceJson();
      if (FILE* f = std::fopen(trace_json_path.c_str(), "w")) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("trace written to %s (open in chrome://tracing)\n",
                    trace_json_path.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", trace_json_path.c_str());
      }
    }
    return true;
  };

  if (!one_shot.empty()) return answer_query(one_shot) ? 0 : 1;

  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string input = std::string(Trim(line));
    if (input.empty()) {
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (input[0] == '\\') {
      std::istringstream ss(input.substr(1));
      std::string cmd;
      ss >> cmd;
      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "schema") {
        PrintSchema(*db);
      } else if (cmd == "sql" || cmd == "run" || cmd == "csv" || cmd == "accept") {
        size_t n = 0;
        ss >> n;
        if (n == 0 || n > last.size()) {
          std::printf("no answer #%zu (last query returned %zu)\n", n, last.size());
        } else if (cmd == "sql") {
          std::printf("%s\n", last[n - 1].sql.ToSql().c_str());
        } else if (cmd == "run" || cmd == "csv") {
          auto rs = exec.Execute(last[n - 1].sql);
          if (!rs.ok()) {
            std::printf("execution failed: %s\n", rs.status().ToString().c_str());
          } else if (cmd == "csv") {
            for (size_t c = 0; c < rs->header.size(); ++c) {
              if (c > 0) std::printf(",");
              std::printf("%s", CsvEscape(rs->header[c].ToString()).c_str());
            }
            std::printf("\n");
            for (const Row& row : rs->rows) {
              for (size_t c = 0; c < row.size(); ++c) {
                if (c > 0) std::printf(",");
                if (!row[c].is_null()) {
                  std::printf("%s", CsvEscape(row[c].ToString()).c_str());
                }
              }
              std::printf("\n");
            }
          } else {
            std::printf("%zu tuple(s)\n", rs->size());
            for (size_t r = 0; r < rs->rows.size() && r < 10; ++r) {
              std::string out;
              for (size_t c = 0; c < rs->header.size(); ++c) {
                if (c > 0) out += " | ";
                out += rs->header[c].ToString() + "=" + rs->rows[r][c].ToString();
              }
              std::printf("  %s\n", out.c_str());
            }
          }
        } else {  // accept
          feedback.Accept(last[n - 1].configuration);
          EngineOptions opts = base_options;
          feedback.Configure(&opts);
          rebuild(opts);
          engine->SetTrainedHmm(feedback.TrainedModel());
          std::printf("accepted; conf_feedback=%.2f, forward mode=%s\n",
                      feedback.ConfidenceFeedback(),
                      opts.forward_mode == ForwardMode::kCombinedDst
                          ? "combined-dst"
                          : "hungarian");
        }
      } else if (cmd == "reject") {
        feedback.Reject();
        EngineOptions opts = base_options;
        feedback.Configure(&opts);
        rebuild(opts);
        engine->SetTrainedHmm(feedback.TrainedModel());
        std::printf("rejected; conf_feedback=%.2f\n", feedback.ConfidenceFeedback());
      } else if (cmd == "explain") {
        std::string word;
        std::getline(ss, word);
        word = std::string(Trim(word));
        if (word.empty()) {
          std::printf("usage: \\explain WORD\n");
        } else {
          for (const auto& m : engine->ExplainKeyword(word, 8)) {
            std::printf("  %.3f  %s\n", m.weight,
                        engine->terminology().term(m.term_index).ToString().c_str());
          }
        }
      } else if (cmd == "stats") {
        std::printf("accepted=%zu rejected=%zu conf_feedback=%.2f conf_apriori=%.2f\n",
                    feedback.accepted(), feedback.rejected(),
                    feedback.ConfidenceFeedback(), feedback.ConfidenceApriori());
      } else {
        std::printf("unknown command \\%s\n", cmd.c_str());
      }
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }

    if (answer_query(input)) {
      std::printf("(\\sql N, \\run N, \\csv N, \\accept N, \\reject, \\schema, \\quit)\n");
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
