// Interactive keyword-search shell over the bundled databases.
//
//   ./build/examples/keymantic_cli [--db=university|mondial|dblp|imdb]
//                                  [--metadata-only] [--k=N]
//                                  [--explain] [--trace-json=FILE]
//                                  ["one-shot query"]
//
// With a positional argument the shell answers that one query and exits —
// the scriptable form. --explain prints the EXPLAIN answer after each
// query: per-keyword weight provenance (which bonus fired: synonym, regex
// pattern, instance hit, contextualization) plus the span tree of the
// pipeline stages. --trace-json writes the same trace as Chrome
// trace_event JSON (open in about:tracing); it implies tracing on.
//
// Type keyword queries at the prompt. Commands:
//   \schema          list relations and attributes
//   \sql N           show the full SQL of answer N of the last query
//   \run N           execute answer N and print its tuples (up to 10)
//   \csv N           dump answer N's result as CSV
//   \accept N        positive feedback: train the HMM on answer N's
//                    configuration and adapt the ranker confidences
//   \reject          negative feedback on the last top answer
//   \explain WORD    show the strongest term matches of one keyword
//   \stats           feedback state and current engine configuration
//   \quit            exit
//
// Feedback drives the FeedbackManager: after enough accepted answers the
// engine switches to the DST combination of the metadata ranker and the
// trained HMM, exactly as the paper family describes.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "core/feedback.h"
#include "core/keymantic.h"
#include "datasets/dblp.h"
#include "datasets/imdb.h"
#include "datasets/mondial.h"
#include "datasets/university.h"
#include "engine/executor.h"
#include "relational/csv.h"

namespace {

using namespace km;

StatusOr<Database> BuildByName(const std::string& name) {
  if (name == "university") return BuildUniversityDatabase();
  if (name == "mondial") return BuildMondialDatabase();
  if (name == "imdb") return BuildImdbDatabase();
  if (name == "dblp") {
    DblpOptions opts;
    opts.persons = 1000;
    opts.articles = 1500;
    opts.inproceedings = 2000;
    return BuildDblpDatabase(opts);
  }
  return Status::InvalidArgument("unknown database '" + name +
                                 "' (use university|mondial|dblp|imdb)");
}

void PrintSchema(const Database& db) {
  for (const RelationSchema& r : db.schema().relations()) {
    std::printf("  %s(", r.name().c_str());
    for (size_t a = 0; a < r.arity(); ++a) {
      if (a > 0) std::printf(", ");
      std::printf("%s", r.attribute(a).name.c_str());
      if (r.attribute(a).is_primary_key) std::printf("*");
    }
    std::printf(")  [%zu rows]\n", db.FindTable(r.name())->size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string db_name = "university";
  bool metadata_only = false;
  bool explain = false;
  std::string trace_json_path;
  std::string one_shot;
  size_t k = 5;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--db=", 0) == 0) db_name = arg.substr(5);
    else if (arg == "--metadata-only") metadata_only = true;
    else if (arg == "--explain") explain = true;
    else if (arg.rfind("--trace-json=", 0) == 0) trace_json_path = arg.substr(13);
    else if (arg.rfind("--k=", 0) == 0) k = std::stoul(arg.substr(4));
    else if (arg.rfind("--", 0) != 0) one_shot = arg;
    else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  auto db = BuildByName(db_name);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %s: %zu relations, %zu tuples%s\n", db_name.c_str(),
              db->schema().relations().size(), db->TotalRows(),
              metadata_only ? " (metadata-only mode)" : "");

  EngineOptions base_options;
  if (metadata_only) {
    base_options.weights.use_instance_vocabulary = false;
    base_options.use_mi_weights = false;
    base_options.build_phrase_vocabulary = false;
  }
  base_options.explain = explain;
  base_options.trace = explain || !trace_json_path.empty();
  auto engine = std::make_unique<KeymanticEngine>(*db, base_options);
  Executor exec(*db);
  Terminology terminology(db->schema());
  FeedbackManager feedback(terminology, db->schema());

  std::vector<Explanation> last;
  std::vector<std::string> last_keywords;

  // Answers one query, printing the ranked answers and — when asked — the
  // EXPLAIN rendering and the Chrome trace file. Returns false on error.
  auto answer_query = [&](const std::string& query) {
    auto result = engine->Answer(query, k);
    if (!result.ok()) {
      std::printf("no answer: %s\n", result.status().ToString().c_str());
      last.clear();
      return false;
    }
    last = result->explanations;
    last_keywords = Tokenize(query, engine->tokenizer_options());
    for (size_t i = 0; i < last.size(); ++i) {
      auto count = exec.Count(last[i].sql);
      std::printf("#%zu (score %.3f, %zu tuples)  %s\n", i + 1, last[i].score,
                  count.ok() ? *count : 0,
                  last[i]
                      .configuration.ToString(last_keywords, engine->terminology())
                      .c_str());
    }
    if (explain) std::printf("%s", result->Explain().c_str());
    if (!trace_json_path.empty() && result->trace != nullptr) {
      std::string json = result->trace->ChromeTraceJson();
      if (FILE* f = std::fopen(trace_json_path.c_str(), "w")) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("trace written to %s (open in chrome://tracing)\n",
                    trace_json_path.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", trace_json_path.c_str());
      }
    }
    return true;
  };

  if (!one_shot.empty()) return answer_query(one_shot) ? 0 : 1;

  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::string input = std::string(Trim(line));
    if (input.empty()) {
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (input[0] == '\\') {
      std::istringstream ss(input.substr(1));
      std::string cmd;
      ss >> cmd;
      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "schema") {
        PrintSchema(*db);
      } else if (cmd == "sql" || cmd == "run" || cmd == "csv" || cmd == "accept") {
        size_t n = 0;
        ss >> n;
        if (n == 0 || n > last.size()) {
          std::printf("no answer #%zu (last query returned %zu)\n", n, last.size());
        } else if (cmd == "sql") {
          std::printf("%s\n", last[n - 1].sql.ToSql().c_str());
        } else if (cmd == "run" || cmd == "csv") {
          auto rs = exec.Execute(last[n - 1].sql);
          if (!rs.ok()) {
            std::printf("execution failed: %s\n", rs.status().ToString().c_str());
          } else if (cmd == "csv") {
            for (size_t c = 0; c < rs->header.size(); ++c) {
              if (c > 0) std::printf(",");
              std::printf("%s", CsvEscape(rs->header[c].ToString()).c_str());
            }
            std::printf("\n");
            for (const Row& row : rs->rows) {
              for (size_t c = 0; c < row.size(); ++c) {
                if (c > 0) std::printf(",");
                if (!row[c].is_null()) {
                  std::printf("%s", CsvEscape(row[c].ToString()).c_str());
                }
              }
              std::printf("\n");
            }
          } else {
            std::printf("%zu tuple(s)\n", rs->size());
            for (size_t r = 0; r < rs->rows.size() && r < 10; ++r) {
              std::string out;
              for (size_t c = 0; c < rs->header.size(); ++c) {
                if (c > 0) out += " | ";
                out += rs->header[c].ToString() + "=" + rs->rows[r][c].ToString();
              }
              std::printf("  %s\n", out.c_str());
            }
          }
        } else {  // accept
          feedback.Accept(last[n - 1].configuration);
          EngineOptions opts = base_options;
          feedback.Configure(&opts);
          engine = std::make_unique<KeymanticEngine>(*db, opts);
          engine->SetTrainedHmm(feedback.TrainedModel());
          std::printf("accepted; conf_feedback=%.2f, forward mode=%s\n",
                      feedback.ConfidenceFeedback(),
                      opts.forward_mode == ForwardMode::kCombinedDst
                          ? "combined-dst"
                          : "hungarian");
        }
      } else if (cmd == "reject") {
        feedback.Reject();
        EngineOptions opts = base_options;
        feedback.Configure(&opts);
        engine = std::make_unique<KeymanticEngine>(*db, opts);
        engine->SetTrainedHmm(feedback.TrainedModel());
        std::printf("rejected; conf_feedback=%.2f\n", feedback.ConfidenceFeedback());
      } else if (cmd == "explain") {
        std::string word;
        std::getline(ss, word);
        word = std::string(Trim(word));
        if (word.empty()) {
          std::printf("usage: \\explain WORD\n");
        } else {
          for (const auto& m : engine->ExplainKeyword(word, 8)) {
            std::printf("  %.3f  %s\n", m.weight,
                        engine->terminology().term(m.term_index).ToString().c_str());
          }
        }
      } else if (cmd == "stats") {
        std::printf("accepted=%zu rejected=%zu conf_feedback=%.2f conf_apriori=%.2f\n",
                    feedback.accepted(), feedback.rejected(),
                    feedback.ConfidenceFeedback(), feedback.ConfidenceApriori());
      } else {
        std::printf("unknown command \\%s\n", cmd.c_str());
      }
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }

    if (answer_query(input)) {
      std::printf("(\\sql N, \\run N, \\csv N, \\accept N, \\reject, \\schema, \\quit)\n");
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
